"""Experiment driver: runs (benchmark × prefetcher) simulation matrices.

Every figure of the evaluation section is a view over the same runs
(IPC for Fig. 10, coverage/accuracy for Fig. 12, traffic for Fig. 13,
energy for Fig. 15).  Execution is delegated to the process-wide
:class:`repro.exec.ExecutionEngine`, which memoizes results per
:class:`repro.exec.RunKey` in-process (so the benchmark harness
regenerating all figures performs each simulation exactly once) and can
additionally parallelize across worker processes and persist results to
an on-disk cache — see ``docs/execution.md``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.config import GPUConfig, SchedulerKind, small_config
from repro.exec import ExecutionEngine, RunKey
from repro.prefetch.factory import default_scheduler_for
from repro.sim.gpu import SimResult
from repro.workloads import Scale

__all__ = [
    "RunKey",
    "clear_cache",
    "get_engine",
    "set_engine",
    "make_key",
    "run_benchmark",
    "run_matrix",
    "speedups_over_baseline",
]

_ENGINE = ExecutionEngine()


def get_engine() -> ExecutionEngine:
    """The process-wide execution engine."""
    return _ENGINE


def set_engine(engine: ExecutionEngine) -> ExecutionEngine:
    """Install ``engine`` as the process-wide execution engine.

    The CLI (``--jobs``/``--cache``) and the benchmark harness
    (``REPRO_BENCH_JOBS``/``REPRO_BENCH_CACHE``) use this to configure
    parallelism and persistence; library callers rarely need to.
    """
    global _ENGINE
    _ENGINE = engine
    return engine


def clear_cache() -> None:
    """Drop the engine's in-process memo (persistent cache untouched)."""
    _ENGINE.clear_memo()


def make_key(
    benchmark: str,
    prefetcher: str = "none",
    *,
    config: Optional[GPUConfig] = None,
    scale: Scale = Scale.SMALL,
    scheduler: Optional[SchedulerKind] = None,
) -> RunKey:
    """Resolve defaults into the canonical :class:`RunKey` for one cell."""
    cfg = config if config is not None else small_config()
    kind = scheduler if scheduler is not None else default_scheduler_for(prefetcher)
    return RunKey(benchmark.upper(), prefetcher, scale,
                  cfg.with_scheduler(kind))


def run_benchmark(
    benchmark: str,
    prefetcher: str = "none",
    *,
    config: Optional[GPUConfig] = None,
    scale: Scale = Scale.SMALL,
    scheduler: Optional[SchedulerKind] = None,
    use_cache: bool = True,
) -> SimResult:
    """Simulate one benchmark under one prefetch engine.

    The scheduler defaults to the engine's Figure 10 pairing (PAS for
    CAPS, two-level otherwise); pass ``scheduler`` to override (the
    Figure 14b sweep does).
    """
    key = make_key(benchmark, prefetcher, config=config, scale=scale,
                   scheduler=scheduler)
    return _ENGINE.run(key, use_cache=use_cache)


def run_matrix(
    benchmarks: Sequence[str],
    prefetchers: Sequence[str],
    *,
    config: Optional[GPUConfig] = None,
    scale: Scale = Scale.SMALL,
    scheduler: Optional[SchedulerKind] = None,
) -> Dict[Tuple[str, str], SimResult]:
    """Run the full (benchmark × prefetcher) matrix.

    The whole matrix is handed to the engine in one batch, so with
    ``jobs > 1`` cells execute in parallel, duplicates collapse to one
    simulation, and cached cells are never re-run.
    """
    keys = {
        (b, p): make_key(b, p, config=config, scale=scale,
                         scheduler=scheduler)
        for b in benchmarks
        for p in prefetchers
    }
    results = _ENGINE.run_many(list(keys.values()))
    return {bp: results[key] for bp, key in keys.items()}


def speedups_over_baseline(
    matrix: Mapping[Tuple[str, str], SimResult],
    benchmarks: Sequence[str],
    prefetchers: Sequence[str],
    baseline: str = "none",
) -> Dict[Tuple[str, str], float]:
    """Normalized IPC per (benchmark, prefetcher) over the baseline."""
    out: Dict[Tuple[str, str], float] = {}
    for b in benchmarks:
        base = matrix[(b, baseline)].ipc
        if base <= 0:
            raise ValueError(f"baseline IPC for {b} is non-positive")
        for p in prefetchers:
            out[(b, p)] = matrix[(b, p)].ipc / base
    return out
