"""Experiment driver: runs (benchmark × prefetcher) simulation matrices.

Every figure of the evaluation section is a view over the same runs
(IPC for Fig. 10, coverage/accuracy for Fig. 12, traffic for Fig. 13,
energy for Fig. 15), so results are memoized per process by
:class:`RunKey`; the benchmark harness regenerating all figures performs
each simulation exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.config import GPUConfig, SchedulerKind, small_config
from repro.prefetch.factory import default_scheduler_for, make_prefetcher
from repro.sim.gpu import SimResult, simulate
from repro.workloads import Scale, build


@dataclass(frozen=True)
class RunKey:
    benchmark: str
    prefetcher: str
    scale: Scale
    config: GPUConfig


_CACHE: Dict[RunKey, SimResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_benchmark(
    benchmark: str,
    prefetcher: str = "none",
    *,
    config: Optional[GPUConfig] = None,
    scale: Scale = Scale.SMALL,
    scheduler: Optional[SchedulerKind] = None,
    use_cache: bool = True,
) -> SimResult:
    """Simulate one benchmark under one prefetch engine.

    The scheduler defaults to the engine's Figure 10 pairing (PAS for
    CAPS, two-level otherwise); pass ``scheduler`` to override (the
    Figure 14b sweep does).
    """
    cfg = config if config is not None else small_config()
    kind = scheduler if scheduler is not None else default_scheduler_for(prefetcher)
    cfg = cfg.with_scheduler(kind)
    key = RunKey(benchmark.upper(), prefetcher, scale, cfg)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    kernel = build(benchmark, scale)
    factory = make_prefetcher(prefetcher) if prefetcher != "none" else None
    result = simulate(kernel, cfg, factory)
    if not result.completed:
        raise RuntimeError(
            f"{benchmark}/{prefetcher} hit the cycle limit "
            f"({cfg.max_cycles}) before completing"
        )
    if use_cache:
        _CACHE[key] = result
    return result


def run_matrix(
    benchmarks: Sequence[str],
    prefetchers: Sequence[str],
    *,
    config: Optional[GPUConfig] = None,
    scale: Scale = Scale.SMALL,
    scheduler: Optional[SchedulerKind] = None,
) -> Dict[Tuple[str, str], SimResult]:
    """Run the full (benchmark × prefetcher) matrix."""
    out: Dict[Tuple[str, str], SimResult] = {}
    for b in benchmarks:
        for p in prefetchers:
            out[(b, p)] = run_benchmark(
                b, p, config=config, scale=scale, scheduler=scheduler
            )
    return out


def speedups_over_baseline(
    matrix: Mapping[Tuple[str, str], SimResult],
    benchmarks: Sequence[str],
    prefetchers: Sequence[str],
    baseline: str = "none",
) -> Dict[Tuple[str, str], float]:
    """Normalized IPC per (benchmark, prefetcher) over the baseline."""
    out: Dict[Tuple[str, str], float] = {}
    for b in benchmarks:
        base = matrix[(b, baseline)].ipc
        if base <= 0:
            raise ValueError(f"baseline IPC for {b} is non-positive")
        for p in prefetchers:
            out[(b, p)] = matrix[(b, p)].ipc / base
    return out
