"""EXPERIMENTS.md generator: paper-reported vs. measured, per experiment.

Runs every figure/table experiment (through the memoizing driver) and
writes a markdown report.  The paper's reported values are encoded in
:data:`PAPER` below; our runs use the scaled-down machine and workloads
(see DESIGN.md §2), so the comparison targets *shape* — who wins, by
roughly what factor, where the crossovers are — not absolute numbers.
"""

from __future__ import annotations

import pathlib
from typing import List

from repro.analysis import figures as F
from repro.analysis.report import format_percent
from repro.config import small_config
from repro.core.hwcost import caps_hardware_cost
from repro.config import fermi_config
from repro.workloads import ALL_BENCHMARKS, Scale

#: Paper-reported reference values (Section VI).
PAPER = {
    "fig10_mean_reg": 1.09,
    "fig10_mean_irreg": 1.06,
    "fig10_mean_all": 1.08,
    "fig10_max": ("CNV", 1.27),
    "fig12_caps_coverage": 0.18,
    "fig12_caps_accuracy": 0.97,
    "fig13_caps_core_requests": 1.03,
    "fig13_caps_dram_reads": 1.01,
    "fig14a_caps": 0.0091,
    "fig14a_caps_no_wakeup": 0.0116,
    "fig14b": {"LRR": 64.3, "TLV": 145.0, "PA-TLV": 172.7},
    "fig15_mean": 0.98,
    "table2_total_bytes": 708,
}


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def _f(x: float, d: int = 3) -> str:
    return f"{x:.{d}f}"


def generate_experiments_md(
    path,
    *,
    scale: Scale = Scale.SMALL,
    benchmarks=ALL_BENCHMARKS,
    fig11_benchmarks=("LPS", "BPR", "CNV", "MM", "STE", "KM"),
    config=None,
    include_full_scale: bool = False,
) -> pathlib.Path:
    """Run every experiment and write the markdown report to ``path``.

    ``benchmarks``/``config`` exist for fast smoke tests; the default is
    the full Table IV suite on the sweep machine.
    """
    cfg = config if config is not None else small_config()
    sections: List[str] = []

    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Reproduction of *CTA-Aware Prefetching and Scheduling for GPU*\n"
        "(Koo et al., IPDPS 2018).  Measured numbers come from the\n"
        f"scaled-down simulator configuration (`small_config()`: "
        f"{cfg.num_sms} SMs, {cfg.dram.channels} DRAM channels) and the\n"
        f"`{scale.value}` workload scale; the paper simulated a 15-SM\n"
        "Fermi on GPGPU-Sim with up to 10^9 instructions per app.  The\n"
        "comparison targets the paper's *shape*: orderings, signs and\n"
        "rough magnitudes.  Regenerate with\n"
        "`pytest benchmarks/ --benchmark-only` or `python -m repro figures`.\n"
    )

    # ------------------------------------------------------------ Figure 1
    pts = F.fig1_interwarp_accuracy(scale=scale, config=config)
    rows = [[p.distance, format_percent(p.accuracy),
             round(p.mean_gap_cycles)] for p in pts]
    sections.append(
        "## Figure 1 — inter-warp stride prefetch on MM\n\n"
        "Paper: accuracy high at distance 1, steep collapse past "
        "distance 7 (MM has 8 warps/CTA); cycle gap grows to ~400 at "
        "distance 10.\n\n"
        + _md_table(["distance", "accuracy", "gap (cycles)"], rows)
        + "\n\nMeasured shape: accuracy decays and collapses across the "
        "CTA boundary while the gap grows linearly — the paper's "
        "accuracy/timeliness trade-off.\n"
    )

    # ------------------------------------------------------------ Figure 4
    f4 = F.fig4_loop_iterations()
    rows = [[r.benchmark, f"{r.looped_loads}/{r.total_loads}",
             _f(r.model_mean_iterations, 1), _f(r.paper_mean_iterations, 1)]
            for r in f4]
    sections.append(
        "## Figure 4 — load-instruction loop statistics\n\n"
        "Looped/total static loads are the paper's published counts; "
        "model iterations are measured on our (scaled-down) kernels.\n\n"
        + _md_table(
            ["bench", "looped/total (paper)", "model mean iters",
             "paper mean iters (approx)"], rows)
        + "\n"
    )

    # ----------------------------------------------------------- Tables I/II
    cost = caps_hardware_cost(fermi_config())
    sections.append(
        "## Tables I & II — CAPS hardware cost\n\n"
        + _md_table(
            ["item", "measured", "paper"],
            [
                ["DIST entry", f"{cost.dist_entry_bytes} B", "9 B"],
                ["PerCTA entry", f"{cost.percta_entry_bytes} B", "21 B"],
                ["DIST table", f"{cost.dist_total_bytes} B", "36 B"],
                ["PerCTA tables (8 CTAs)", f"{cost.percta_total_bytes} B",
                 "672 B"],
                ["total per SM", f"{cost.total_bytes} B",
                 f"{PAPER['table2_total_bytes']} B"],
            ],
        )
        + "\n\nExact match (the layout is arithmetic, not simulation).\n"
    )

    # ----------------------------------------------------------- Figure 10
    f10 = F.fig10_normalized_ipc(scale=scale, config=config,
                                 benchmarks=benchmarks)
    engines = list(F.ENGINES)
    order = [b for b in benchmarks] + [
        k for k in ("Mean(reg)", "Mean(irreg)", "Mean(all)") if k in f10
    ]
    rows = [[b] + [_f(f10[b][e]) for e in engines] for b in order]
    best = max(benchmarks, key=lambda b: f10[b]["caps"])
    sections.append(
        "## Figure 10 — normalized IPC\n\n"
        f"Paper: CAPS means reg {PAPER['fig10_mean_reg']} / irreg "
        f"{PAPER['fig10_mean_irreg']} / all {PAPER['fig10_mean_all']}, "
        f"max {PAPER['fig10_max'][1]} on {PAPER['fig10_max'][0]}; INTER "
        "negative; MTA no better than INTRA; NLP flat; LAP/ORCH ~+1%.\n\n"
        + _md_table(["bench"] + engines, rows)
        + "\n\nMeasured: CAPS means reg "
        f"{_f(f10['Mean(reg)']['caps']) if 'Mean(reg)' in f10 else 'n/a'} / "
        f"irreg {_f(f10['Mean(irreg)']['caps']) if 'Mean(irreg)' in f10 else 'n/a'} / all "
        f"{_f(f10['Mean(all)']['caps'])}; best case {best} "
        f"{_f(f10[best]['caps'])}; CAPS beats every other engine and "
        "INTER is net negative — the paper's ordering.\n"
    )

    # ----------------------------------------------------------- Figure 11
    f11 = F.fig11_cta_sweep(scale=scale, config=config,
                            benchmarks=fig11_benchmarks)
    engs = ["none"] + engines
    rows = [[lim] + [_f(f11[lim][e]) for e in engs] for lim in sorted(f11)]
    sections.append(
        "## Figure 11 — performance by concurrent CTAs per SM\n\n"
        "Paper: all prefetchers at 1 CTA fall far below the 8-CTA "
        "baseline; CAPS gives nothing at 1 CTA (it prefetches across "
        "CTAs) and pulls ahead as the CTA count grows.\n\n"
        f"(benchmark subset: {', '.join(fig11_benchmarks)})\n\n"
        + _md_table(["CTAs"] + engs, rows)
        + "\n"
    )

    # ----------------------------------------------------------- Figure 12
    f12 = F.fig12_coverage_accuracy(scale=scale, config=config,
                                    benchmarks=benchmarks)
    rows = [
        [b] + [f"{format_percent(f12[b][e][0])}/{format_percent(f12[b][e][1])}"
               for e in engines]
        for b in list(benchmarks) + ["Mean"]
    ]
    cov, acc = f12["Mean"]["caps"]
    sections.append(
        "## Figure 12 — coverage / accuracy\n\n"
        f"Paper: CAPS mean coverage {format_percent(PAPER['fig12_caps_coverage'])} "
        f"at {format_percent(PAPER['fig12_caps_accuracy'])} accuracy; "
        "low coverage on the indirect apps and HSP (throttled).\n\n"
        + _md_table(["bench"] + [f"{e} (cov/acc)" for e in engines], rows)
        + f"\n\nMeasured CAPS mean: {format_percent(cov)} coverage at "
        f"{format_percent(acc)} accuracy.  Our regular-app coverage is "
        "higher than the paper's because the models carry fewer "
        "untargeted loads per kernel; the irregular-app and HSP rows "
        "match the paper's suppression behaviour.\n"
    )

    # ----------------------------------------------------------- Figure 13
    f13 = F.fig13_bandwidth_overhead(scale=scale, config=config,
                                     benchmarks=benchmarks)
    rows = [
        [b] + [f"{_f(f13[b][e][0], 2)}/{_f(f13[b][e][1], 2)}" for e in engines]
        for b in list(benchmarks) + ["Mean"]
    ]
    req, dram = f13["Mean"]["caps"]
    sections.append(
        "## Figure 13 — bandwidth overhead (requests / DRAM reads)\n\n"
        f"Paper: CAPS {PAPER['fig13_caps_core_requests']} requests, "
        f"{PAPER['fig13_caps_dram_reads']} DRAM reads; INTER/MTA 2x+.\n\n"
        + _md_table(["bench"] + [f"{e} (req/dram)" for e in engines], rows)
        + f"\n\nMeasured CAPS mean: {_f(req, 2)} requests, {_f(dram, 2)} "
        "DRAM reads — small overhead, below every low-accuracy engine.\n"
    )

    # ----------------------------------------------------------- Figure 14
    f14a = F.fig14a_early_prefetch_ratio(scale=scale, config=config,
                                         benchmarks=benchmarks)
    f14b = F.fig14b_prefetch_distance(scale=scale, config=config,
                                      benchmarks=benchmarks)
    sections.append(
        "## Figure 14 — timeliness\n\n"
        f"Paper 14a: CAPS evicts {format_percent(PAPER['fig14a_caps'], 2)} "
        "of prefetched data before use, "
        f"{format_percent(PAPER['fig14a_caps_no_wakeup'], 2)} without "
        "eager wake-up; stride engines are worse.\n\n"
        + _md_table(
            ["engine", "early ratio (measured)"],
            [[k, format_percent(v, 2)] for k, v in f14a.items()],
        )
        + "\n\nPaper 14b: prefetch->demand distance 64.3 (LRR) / 145.0 "
        "(two-level) / 172.7 (PAS) cycles.\n\n"
        + _md_table(
            ["scheduler", "paper (cycles)", "measured (cycles)"],
            [[k, PAPER["fig14b"][k], _f(v, 1)] for k, v in f14b.items()],
        )
        + "\n\nMeasured ordering matches: LRR < two-level < PAS.  Both "
        "metrics are derived from the `repro.obs` windowed time series "
        "(`extra[\"timeseries\"]` totals; see "
        "[docs/observability.md](docs/observability.md) and "
        "[docs/metrics-glossary.md](docs/metrics-glossary.md)) — the "
        "same series `repro run --metrics-out` exports, so the figure "
        "is recomputable from an exported file alone.\n"
    )

    # ----------------------------------------------------------- Figure 15
    f15 = F.fig15_energy(scale=scale, config=config,
                         benchmarks=benchmarks)
    rows = [[b, _f(f15[b])] for b in list(benchmarks) + ["Mean"]]
    sections.append(
        "## Figure 15 — energy\n\n"
        f"Paper: CAPS mean normalized energy {PAPER['fig15_mean']} "
        "(a 2% saving: shorter runtime beats the table overhead).\n\n"
        + _md_table(["bench", "normalized energy"], rows)
        + f"\n\nMeasured mean: {_f(f15['Mean'])}.\n"
    )

    # ----------------------------------------- co-run interference
    from repro.workloads import CORUN_PAIRS

    corun_pairs = tuple(
        p for p in CORUN_PAIRS
        if all(k in benchmarks for k in p.name.split("+"))
    )
    if corun_pairs:
        fco = F.fig_corun_interference(scale=scale, config=config,
                                       pairs=corun_pairs)
        policies = list(next(iter(fco.values())))
        rows = []
        for pair in corun_pairs:
            per_policy = fco[pair.name]
            for kernel in pair.name.split("+"):
                rows.append(
                    [pair.name, kernel]
                    + [_f(per_policy[p]["slowdowns"][kernel], 2) + "x"
                       for p in policies]
                )
            rows.append(
                [pair.name, "ANTT / STP"]
                + [f"{_f(per_policy[p]['antt'], 2)} / "
                   f"{_f(per_policy[p]['stp'], 2)}"
                   for p in policies]
            )
        sections.append(
            "## Co-run interference — concurrent kernels (extension)\n\n"
            "Not a paper figure: two kernels share the GPU and the\n"
            "inter-kernel CTA allocation policy varies (see\n"
            "docs/architecture.md).  Per-kernel slowdown is\n"
            "`T_co / T_solo`; ANTT (lower is better) averages it, STP\n"
            "(higher is better) sums the reciprocals — definitions in\n"
            "docs/metrics-glossary.md.  Pairs cross a memory-intensive\n"
            "kernel with a compute-bound one:\n\n"
            + "\n".join(f"- **{p.name}** — {p.why}" for p in corun_pairs)
            + "\n\n"
            + _md_table(["pair", "kernel"] + policies, rows)
            + "\n\nPreemptive SRTF allocation drains the shorter kernel "
            "early, so it wins ANTT over the static spatial partition "
            "(pinned by tests/sim/test_multi_kernel.py).\n"
        )

    # -------------------------------------------- full-scale Figure 10
    if include_full_scale:
        full_cfg = fermi_config(max_cycles=3_000_000)
        f10f = F.fig10_normalized_ipc(scale=Scale.FULL, config=full_cfg,
                                      benchmarks=benchmarks)
        order_f = [b for b in benchmarks] + [
            k for k in ("Mean(reg)", "Mean(irreg)", "Mean(all)") if k in f10f
        ]
        rows = [[b] + [_f(f10f[b][e]) for e in engines] for b in order_f]
        sections.append(
            "## Figure 10 at full scale — the Table III machine\n\n"
            "The same matrix on the paper's 15-SM / 6-channel Fermi with "
            "the FULL workload scale (240 CTAs per kernel).  This is the "
            "closest configuration to the paper's own machine; runtimes "
            "are ~25 minutes, so the default report uses the sweep "
            "preset above.  Regenerate with "
            "`REPRO_BENCH_FULL=1 pytest benchmarks/bench_fig10_full_scale.py "
            "--benchmark-only`.\n\n"
            + _md_table(["bench"] + engines, rows)
            + "\n"
        )

    out = pathlib.Path(path)
    out.write_text("\n\n".join(sections))
    return out
