"""Prefetcher interface and the no-op baseline.

A prefetcher is a passive observer of its SM's load stream.  The SM
calls:

* :meth:`Prefetcher.on_load_issue` for every demand load a warp issues
  (with the raw per-transaction addresses and their line addresses);
* :meth:`Prefetcher.on_l1_miss` for every demand line miss (the trigger
  used by next-line and macro-block prefetchers);
* CTA lifecycle hooks so per-CTA state can be recycled when the CTA slot
  is reassigned.

Hooks return :class:`PrefetchCandidate` lists; the SM enqueues them into
a bounded prefetch queue serviced only on cycles where the L1 port is
not used by a demand access — the paper's "prefetch requests access L1
data cache with lower priority than demand fetches".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, TYPE_CHECKING

from repro.config import GPUConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.warp import Warp
    from repro.sim.isa import LoadSite


@dataclass(frozen=True)
class PrefetchCandidate:
    """A prefetch the engine wants issued.

    ``target_warp_uid`` binds the prefetch to the warp whose demand it
    should cover (−1 when unknown); PAS uses the binding for eager
    wake-up when the data fills L1.
    """

    line_addr: int
    pc: int
    target_warp_uid: int = -1

    def __post_init__(self) -> None:
        if self.line_addr < 0:
            raise ValueError("prefetch address must be non-negative")


class Prefetcher:
    """Base class: observes loads, proposes prefetches.

    Subclasses override the observation hooks (:meth:`on_load_issue`,
    :meth:`on_l1_miss`) and advertise scheduler interactions through the
    ``wants_*`` class flags; the SM and scheduler consult those flags,
    never the concrete type.
    """

    name = "none"
    #: Does this engine want PAS-style leading-warp priority?  Only CAPS
    #: sets this; the SM marks one leading warp per CTA when true and the
    #: configured scheduler is PAS.
    wants_leading_warps = False
    #: Should warps bound to arriving prefetches be woken eagerly?
    wants_eager_wakeup = False
    #: Should the SM enqueue warps in interleaved group order (ORCH)?
    wants_group_interleave = False
    #: Observability hub (:class:`repro.obs.Observability`); installed by
    #: the owning SM when enabled, ``None`` otherwise.  Engines with
    #: internal tables (CAP) report table writes through it.
    obs = None

    def __init__(self, config: GPUConfig, sm_id: int):
        self.config = config
        self.sm_id = sm_id
        self.candidates_generated = 0

    # -- lifecycle -----------------------------------------------------
    def on_cta_launch(self, cta_slot: int, cta_id: int, warps: Sequence["Warp"]) -> None:
        """A CTA was launched into ``cta_slot``."""

    def on_cta_finish(self, cta_slot: int, cta_id: int) -> None:
        """The CTA in ``cta_slot`` retired."""

    # -- observation hooks ----------------------------------------------
    def on_load_issue(
        self,
        warp: "Warp",
        site: "LoadSite",
        addresses: Tuple[int, ...],
        line_addrs: Tuple[int, ...],
        iteration: int,
        now: int,
    ) -> List[PrefetchCandidate]:
        """A warp issued a load; return prefetch candidates to launch."""
        return []

    def on_l1_miss(
        self,
        warp: "Warp",
        pc: int,
        line_addr: int,
        now: int,
    ) -> List[PrefetchCandidate]:
        """A demand load missed L1; return prefetch candidates."""
        return []

    def _emit(self, cands: List[PrefetchCandidate]) -> List[PrefetchCandidate]:
        self.candidates_generated += len(cands)
        return cands

    # -- event engine ----------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this engine spontaneously
        needs its SM to run a cycle — the prefetcher half of the event
        engine's next-event contract (docs/architecture.md).

        Every shipped engine (including CAPS, see
        :meth:`repro.core.caps.CapsPrefetcher.next_event_cycle`) is
        purely reactive: it acts only inside hooks the SM already calls
        on real events (load issue, L1 miss, CTA launch/finish, fills),
        so the base returns "never".  A hypothetical timer-driven engine
        must override this or the event engine would skip its wakeups.
        """
        return 1 << 62


class NoPrefetcher(Prefetcher):
    """The paper's baseline: two-level scheduler, no prefetching."""

    name = "none"
