"""INTER: inter-warp stride prefetching (paper Section III-B).

Per PC the engine tracks the address of the last load and the SM-local
warp slot that issued it.  When warps in adjacent slots issue the same
load, their address delta trains the per-PC stride; trained PCs prefetch
for the next ``distance`` warp slots.

Crucially — and this is the failure mode the paper dissects — the engine
is oblivious to CTA boundaries: the warp in slot ``s+1`` may belong to a
different CTA whose base address is unrelated, so the extrapolated
address is wrong whenever the target crosses a CTA, which happens for
every prefetch once per ``warps_per_cta`` and for *all* prefetches at
distances ≥ warps_per_cta (Figure 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher, PrefetchCandidate


class _PcState:
    __slots__ = ("last_slot", "last_addrs", "stride", "trained")

    def __init__(self):
        self.last_slot: Optional[int] = None
        self.last_addrs: Tuple[int, ...] = ()
        self.stride = 0
        self.trained = False


class InterWarpStride(Prefetcher):
    name = "inter"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self.distance = config.prefetch.inter_warp_distance
        self._pcs: Dict[int, _PcState] = {}

    def on_load_issue(self, warp, site, addresses, line_addrs, iteration, now):
        if iteration > 0:
            # Inter-warp stride engines train on the first execution of a
            # load per warp; iterative re-executions go to INTRA (or MTA).
            return []
        st = self._pcs.get(site.pc)
        if st is None:
            st = self._pcs[site.pc] = _PcState()
        prev_slot, prev_addrs = st.last_slot, st.last_addrs
        st.last_slot, st.last_addrs = warp.slot, addresses
        if prev_slot is not None and warp.slot == prev_slot + 1 and prev_addrs:
            delta = addresses[0] - prev_addrs[0]
            if delta != 0:
                st.stride = delta
                st.trained = True
        if not st.trained or st.stride == 0:
            return []
        line = self.config.l1d.line_bytes
        cands: List[PrefetchCandidate] = []
        for d in range(1, self.distance + 1):
            base = addresses[0] + st.stride * d
            for a in addresses:
                cands.append(
                    PrefetchCandidate(
                        line_addr=(base + (a - addresses[0])) // line * line,
                        pc=site.pc,
                        target_warp_uid=-1,
                    )
                )
        return self._emit(cands)
