"""NLP: next-line prefetching (paper Section III-C).

On every demand L1 miss, fetch the next ``degree`` sequential cache
lines.  Pattern-agnostic: decent on streaming kernels, wasteful
elsewhere, and — issued at miss time for the immediately-next line —
almost never far enough ahead of the consuming warp to hide DRAM
latency, which is why the paper reports little benefit.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher, PrefetchCandidate


class NextLine(Prefetcher):
    name = "nlp"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self.degree = config.prefetch.nlp_degree

    def on_l1_miss(self, warp, pc, line_addr, now):
        line = self.config.l1d.line_bytes
        cands = [
            PrefetchCandidate(line_addr=line_addr + d * line, pc=pc)
            for d in range(1, self.degree + 1)
        ]
        return self._emit(cands)
