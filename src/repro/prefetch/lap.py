"""LAP: locality-aware prefetching (Jog et al. [17]).

L1 misses are tracked per aligned *macro-block* of ``lap_macroblock_lines``
cache lines.  Once ``lap_miss_trigger`` distinct lines of a macro-block
have missed, the remaining lines of the block are prefetched — the
intuition being that consecutive warps touch neighbouring lines of the
same macro-block.  Following [17] we keep a small recency-managed table
of recently observed macro-blocks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Set

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher, PrefetchCandidate

_TABLE_CAPACITY = 64


class LocalityAware(Prefetcher):
    name = "lap"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self.block_lines = config.prefetch.lap_macroblock_lines
        self.trigger = config.prefetch.lap_miss_trigger
        self.block_bytes = self.block_lines * config.l1d.line_bytes
        # macro-block base -> (missed line offsets, already prefetched?)
        self._blocks: "OrderedDict[int, Set[int]]" = OrderedDict()
        self._fired: Set[int] = set()

    def on_l1_miss(self, warp, pc, line_addr, now):
        base = line_addr - (line_addr % self.block_bytes)
        offset = (line_addr - base) // self.config.l1d.line_bytes
        missed = self._blocks.get(base)
        if missed is None:
            if len(self._blocks) >= _TABLE_CAPACITY:
                old, _ = self._blocks.popitem(last=False)
                self._fired.discard(old)
            missed = self._blocks[base] = set()
        else:
            self._blocks.move_to_end(base)
        missed.add(offset)
        if base in self._fired or len(missed) < self.trigger:
            return []
        self._fired.add(base)
        line = self.config.l1d.line_bytes
        cands = [
            PrefetchCandidate(line_addr=base + i * line, pc=pc)
            for i in range(self.block_lines)
            if i not in missed
        ]
        return self._emit(cands)
