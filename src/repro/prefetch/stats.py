"""Prefetch outcome accounting (Figures 12, 13, 14).

The SM's LSU owns one :class:`PrefetchStats` per SM; :class:`repro.sim.gpu.GPU`
aggregates them.  Definitions follow Section VI:

* **coverage** — issued prefetch requests / total demand fetch requests,
  where a demand fetch is a demand line request that goes to memory plus
  the demand fetches a useful prefetch absorbed (i.e. what would have
  gone to memory without prefetching);
* **accuracy** — prefetches actually consumed by a demand request
  (demand hit on a prefetched line, or demand merged into an in-flight
  prefetch) / issued prefetches;
* **early prefetch ratio** (Fig. 14a) — prefetched lines evicted before
  any demand use / issued;
* **prefetch distance** (Fig. 14b) — cycles from prefetch issue to the
  consuming demand access, for timely (useful) prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PrefetchStats:
    candidates: int = 0
    queue_drops: int = 0
    issued: int = 0
    drop_l1_hit: int = 0
    drop_inflight: int = 0
    drop_resource: int = 0
    useful: int = 0
    late_merge: int = 0
    early_evicted: int = 0
    unused_at_end: int = 0
    distance_sum: int = 0
    distance_count: int = 0
    late_wait_sum: int = 0

    def merge(self, other: "PrefetchStats") -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    # -- derived metrics -------------------------------------------------
    @property
    def consumed(self) -> int:
        return self.useful + self.late_merge

    def accuracy(self) -> float:
        """Fraction of issued prefetches consumed by demand requests."""
        return self.consumed / self.issued if self.issued else 0.0

    def coverage(self, demand_mem_fetches: int) -> float:
        """Issued prefetches over total demand fetch requests.

        ``demand_mem_fetches`` counts demand line requests sent to memory
        during the run; consumed prefetches (useful fills and in-flight
        merges) absorbed the rest, so the no-prefetch demand-fetch total
        is their sum.
        """
        denom = demand_mem_fetches + self.consumed
        return self.issued / denom if denom else 0.0

    def early_ratio(self) -> float:
        return self.early_evicted / self.issued if self.issued else 0.0

    def mean_distance(self) -> float:
        """Mean issue->use distance of fully timely (useful) prefetches."""
        if not self.distance_count:
            return 0.0
        return self.distance_sum / self.distance_count

    def mean_lead(self) -> float:
        """Mean cycles of demand latency covered per consumed prefetch.

        Figure 14b's metric: how far before the demand request the
        prefetch was issued, averaged over *all* consumed prefetches —
        fully timely ones (issue->use distance) and in-flight merges
        (issue->merge lead).
        """
        if not self.consumed:
            return 0.0
        return (self.distance_sum + self.late_wait_sum) / self.consumed

    def record_useful(self, distance: int) -> None:
        self.useful += 1
        self.distance_sum += distance
        self.distance_count += 1

    def record_late_merge(self, waited: int) -> None:
        self.late_merge += 1
        self.late_wait_sum += waited

    def as_dict(self) -> Dict[str, float]:
        return {
            "candidates": self.candidates,
            "queue_drops": self.queue_drops,
            "issued": self.issued,
            "drop_l1_hit": self.drop_l1_hit,
            "drop_inflight": self.drop_inflight,
            "drop_resource": self.drop_resource,
            "useful": self.useful,
            "late_merge": self.late_merge,
            "early_evicted": self.early_evicted,
            "unused_at_end": self.unused_at_end,
            "accuracy": self.accuracy(),
            "early_ratio": self.early_ratio(),
            "mean_distance": self.mean_distance(),
        }
