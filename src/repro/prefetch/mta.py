"""MTA: many-thread aware prefetching (Lee et al. [9], hardware variant).

MTA combines both stride flavours: loads that are observed to repeat
within a warp (loop loads) are handled by the intra-warp engine; all
other loads fall back to inter-warp stride extrapolation.  The paper
finds MTA inherits INTER's CTA-boundary inaccuracy whenever several CTAs
run concurrently (Figures 10-12), because the inter-warp half cannot
predict the next CTA's base address.
"""

from __future__ import annotations

from typing import Set

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher
from repro.prefetch.inter import InterWarpStride
from repro.prefetch.intra import IntraWarpStride


class ManyThreadAware(Prefetcher):
    name = "mta"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self._intra = IntraWarpStride(config, sm_id)
        self._inter = InterWarpStride(config, sm_id)
        self._looping_pcs: Set[int] = set()

    def on_load_issue(self, warp, site, addresses, line_addrs, iteration, now):
        if iteration > 0:
            self._looping_pcs.add(site.pc)
        if site.pc in self._looping_pcs:
            cands = self._intra.on_load_issue(
                warp, site, addresses, line_addrs, iteration, now
            )
        else:
            cands = self._inter.on_load_issue(
                warp, site, addresses, line_addrs, iteration, now
            )
        return self._emit(cands)

    def on_cta_finish(self, cta_slot: int, cta_id: int) -> None:
        self._intra.on_cta_finish(cta_slot, cta_id)
        self._inter.on_cta_finish(cta_slot, cta_id)
