"""Prefetch engines evaluated in the paper (Figure 10's legend).

``NONE`` (baseline, no prefetch), ``INTRA`` (intra-warp stride, §III-A),
``INTER`` (inter-warp stride, §III-B), ``MTA`` (many-thread aware [9]),
``NLP`` (next-line, §III-C), ``LAP`` (locality-aware macro-block [17]),
``ORCH`` (LAP + prefetch-aware scheduling groups [17]) and ``CAPS``
(this paper; implemented in :mod:`repro.core`).
"""

from repro.prefetch.base import Prefetcher, PrefetchCandidate, NoPrefetcher
from repro.prefetch.stats import PrefetchStats
from repro.prefetch.intra import IntraWarpStride
from repro.prefetch.inter import InterWarpStride
from repro.prefetch.mta import ManyThreadAware
from repro.prefetch.nlp import NextLine
from repro.prefetch.lap import LocalityAware
from repro.prefetch.orch import Orchestrated
from repro.prefetch.factory import PREFETCHERS, make_prefetcher

__all__ = [
    "Prefetcher",
    "PrefetchCandidate",
    "NoPrefetcher",
    "PrefetchStats",
    "IntraWarpStride",
    "InterWarpStride",
    "ManyThreadAware",
    "NextLine",
    "LocalityAware",
    "Orchestrated",
    "PREFETCHERS",
    "make_prefetcher",
]
