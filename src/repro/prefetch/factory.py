"""Prefetcher registry (Figure 10's legend) and config helpers."""

from __future__ import annotations

from typing import Callable, Dict

from repro.config import GPUConfig, SchedulerKind
from repro.prefetch.base import NoPrefetcher, Prefetcher
from repro.prefetch.inter import InterWarpStride
from repro.prefetch.intra import IntraWarpStride
from repro.prefetch.lap import LocalityAware
from repro.prefetch.mta import ManyThreadAware
from repro.prefetch.nlp import NextLine
from repro.prefetch.orch import Orchestrated


def _registry() -> Dict[str, type]:
    # CAPS lives in repro.core; import lazily to avoid a package cycle.
    from repro.core.caps import CtaAwarePrefetcher

    return {
        "none": NoPrefetcher,
        "intra": IntraWarpStride,
        "inter": InterWarpStride,
        "mta": ManyThreadAware,
        "nlp": NextLine,
        "lap": LocalityAware,
        "orch": Orchestrated,
        "caps": CtaAwarePrefetcher,
    }


#: Evaluation order used throughout the paper's figures.
PREFETCHERS = ("intra", "inter", "mta", "nlp", "lap", "orch", "caps")


def make_prefetcher(name: str) -> Callable[[GPUConfig, int], Prefetcher]:
    """Factory of per-SM prefetcher instances for :func:`repro.sim.simulate`."""
    reg = _registry()
    if name not in reg:
        raise ValueError(
            f"unknown prefetcher {name!r}; choose from {sorted(reg)}"
        )
    cls = reg[name]
    return lambda config, sm_id: cls(config, sm_id)


def default_scheduler_for(name: str) -> SchedulerKind:
    """The scheduler each engine is evaluated with in Figure 10.

    CAPS pairs with PAS (its prefetch-aware scheduler); every other
    engine — and the no-prefetch baseline — runs on the plain two-level
    scheduler.
    """
    if name == "caps":
        return SchedulerKind.PAS
    return SchedulerKind.TWO_LEVEL
