"""ORCH: orchestrated scheduling + prefetching (Jog et al. [17]).

LAP's macro-block prefetcher combined with a prefetch-aware warp
grouping: consecutive warps are placed in different scheduling groups so
that a warp in one group prefetches (via the macro-block trigger) for
the logically consecutive warp scheduled later in the other group.  The
SM honours :attr:`wants_group_interleave` by enqueuing each CTA's even
warps ahead of its odd warps.

On a two-level baseline the paper measured only ~1% gain for LAP/ORCH
(the two-level scheduler already staggers fetch groups), which this
implementation reproduces.
"""

from __future__ import annotations

from repro.prefetch.lap import LocalityAware


class Orchestrated(LocalityAware):
    """LAP prefetching plus interleaved warp-group scheduling.

    Identical to :class:`repro.prefetch.lap.LocalityAware` except for the
    grouping flag; when observability is on, CTA-launch trace events
    carry ``interleaved: true`` so the regrouping is visible on the
    timeline (``repro trace BENCH --engine orch``).
    """

    name = "orch"
    wants_group_interleave = True
