"""INTRA: intra-warp stride prefetching (paper Section III-A).

Per (warp, PC) the engine records the last address and last delta.  Once
two consecutive executions of the same load by the same warp exhibit the
same delta (confidence ≥ 1), it prefetches ``depth`` future iterations.
Only loads that actually repeat in a loop can train, which is why the
paper finds INTRA ineffective for the growing class of loop-free GPU
kernels (Figure 4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher, PrefetchCandidate


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int):
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class IntraWarpStride(Prefetcher):
    name = "intra"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self.depth = config.prefetch.intra_warp_depth
        self._table: Dict[Tuple[int, int], _Entry] = {}

    def on_cta_finish(self, cta_slot: int, cta_id: int) -> None:
        # Warp uids are globally unique; stale entries are only a memory
        # concern.  Drop nothing here (uids never recur).
        pass

    def on_load_issue(self, warp, site, addresses, line_addrs, iteration, now):
        key = (warp.uid, site.pc)
        addr = addresses[0]
        entry = self._table.get(key)
        if entry is None:
            self._table[key] = _Entry(addr)
            return []
        delta = addr - entry.last_addr
        if delta == entry.stride and delta != 0:
            entry.confidence += 1
        else:
            entry.stride = delta
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence < 1 or entry.stride == 0:
            return []
        line = self.config.l1d.line_bytes
        cands = []
        for d in range(1, self.depth + 1):
            base = addr + entry.stride * d
            for a in addresses:
                cands.append(
                    PrefetchCandidate(
                        line_addr=(base + (a - addr)) // line * line,
                        pc=site.pc,
                        target_warp_uid=warp.uid,
                    )
                )
        return self._emit(cands)
