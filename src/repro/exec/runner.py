"""Execution engine: runs experiment-matrix cells, serially or in parallel.

:class:`ExecutionEngine` owns three layers of reuse and resilience:

* an **in-process memo** (`RunKey` → the exact `SimResult` object), so
  repeated lookups inside one process return the identical object —
  the contract the analysis layer has always had;
* an optional **persistent cache** (:class:`repro.exec.cache.ResultCache`)
  shared across processes and invocations;
* a **spawn-safe process pool** (``jobs > 1``) with a per-task timeout
  (delivered via ``SIGALRM`` inside the worker, so a wedged simulation
  cannot wedge the pool), bounded retry on worker failure, and recovery
  from a broken pool (a worker dying hard re-creates the pool and
  resubmits the in-flight cells).  With ``jobs=1`` everything runs
  inline in the calling process — no subprocess is ever spawned.

Retry is **classification-aware** (see :mod:`repro.errors`): transient
failures (worker death, timeout, broken pool, injected chaos faults)
are retried up to the budget with optional exponential backoff;
permanent failures (hangs, invariant violations, bad configs) are
reported immediately — re-running a deterministic simulator cannot
change the outcome.

Two batch modes exist:

* :meth:`ExecutionEngine.run_many` — fail-fast: the first cell that
  exhausts its budget raises :class:`CellError` (historical contract).
* :meth:`ExecutionEngine.run_recorded` — record-and-continue: failures
  become :class:`CellFailure` records and the batch always finishes;
  this is what crash-safe sweeps build on.

The module-level :func:`execute_cell` is the single place that maps a
:class:`RunKey` onto a simulation; it is importable by name so the
``spawn`` start method can pickle tasks to fresh interpreters.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    FailureKind,
    IncompleteRunError,
    TransientError,
    classify,
)
from repro.exec.cache import ResultCache, RunKey, config_fingerprint
from repro.exec.events import EventLog
from repro.guard.faults import FaultPlan
from repro.prefetch.factory import make_prefetcher
from repro.sim.gpu import SimResult, simulate
from repro.workloads import build


class CellTimeout(TransientError):
    """A cell exceeded the engine's per-task timeout."""


class CellError(RuntimeError):
    """A cell failed after exhausting its retry budget (fail-fast mode)."""

    def __init__(self, key: RunKey, cause: BaseException, attempts: int):
        super().__init__(
            f"{key.describe()} failed after {attempts} attempt(s): {cause!r}"
        )
        self.key = key
        self.cause = cause
        self.attempts = attempts


@dataclass
class CellFailure:
    """Terminal failure record for one cell (record-and-continue mode)."""

    key: RunKey
    error: BaseException
    kind: FailureKind
    attempts: int

    def describe(self) -> str:
        """One-line summary of the failed cell and its error."""
        return (f"{self.key.describe()}: {self.error!r} "
                f"[{self.kind.value}, {self.attempts} attempt(s)]")


def execute_cell(key: RunKey, faults: Optional[FaultPlan] = None) -> SimResult:
    """Simulate one matrix cell (no caching; raises on incomplete runs).

    A benchmark of the form ``"A+B"`` is a *co-run* cell: the named
    kernels execute concurrently on one GPU under
    ``key.config.multi.alloc_policy`` (see :mod:`repro.sim.multi`) and
    the result carries per-kernel sub-records in ``extra["kernels"]``.

    The :class:`IncompleteRunError` raised for a cycle-limited run
    carries the truncated result — its ``extra["hang_snapshot"]`` is the
    end-of-run diagnostic.
    """
    factory = (make_prefetcher(key.prefetcher)
               if key.prefetcher != "none" else None)
    if "+" in key.benchmark:
        from repro.sim.multi import simulate_corun

        kernels = [build(name, key.scale)
                   for name in key.benchmark.split("+")]
        result = simulate_corun(kernels, key.config, factory, faults=faults)
    else:
        result = simulate(build(key.benchmark, key.scale), key.config,
                          factory, faults=faults)
    if not result.completed:
        raise IncompleteRunError(
            f"{key.benchmark}/{key.prefetcher} hit the cycle limit "
            f"({key.config.max_cycles}) before completing",
            result=result,
        )
    return result


def call_with_timeout(fn: Callable[[], SimResult],
                      timeout_s: Optional[float]) -> SimResult:
    """Run ``fn`` under a ``SIGALRM`` deadline (main thread only)."""
    if not timeout_s:
        return fn()

    def _expired(signum, frame):
        raise CellTimeout(f"cell exceeded the {timeout_s}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _worker(key: RunKey, timeout_s: Optional[float],
            faults: Optional[FaultPlan] = None, attempt: int = 1) -> SimResult:
    """Pool entry point: one cell, with the per-task deadline armed."""
    if faults is not None and faults.should_crash(attempt):
        faults.crash(attempt, key.describe())
    return call_with_timeout(lambda: execute_cell(key, faults), timeout_s)


class ExecutionEngine:
    """Executes :class:`RunKey` cells with caching, retry and parallelism.

    Parameters
    ----------
    jobs:
        Worker processes for batch execution; ``1`` (the default) runs
        every cell inline.
    cache:
        Optional persistent :class:`ResultCache` shared across
        processes/invocations.  ``None`` keeps only the in-process memo.
    events:
        :class:`EventLog` receiving the telemetry stream (one is created
        if omitted).
    timeout_s:
        Per-cell wall-time budget, enforced inside workers (and inline
        when running serially).
    retries:
        How many times a *transiently* failing cell is resubmitted
        before being declared failed.  Permanent failures are never
        retried.
    backoff_s:
        Base of the exponential backoff slept before retry ``n``
        (``backoff_s * 2**(n-1)`` seconds).  ``0`` (default) retries
        immediately.
    faults:
        Optional :class:`repro.guard.faults.FaultPlan` threaded into
        every cell for chaos testing.  Plans that perturb simulation
        timing disable persistent-cache writes so perturbed results
        never pollute the shared cache.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        events: Optional[EventLog] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff_s: float = 0.0,
        faults: Optional[FaultPlan] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.events = events if events is not None else EventLog()
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.faults = faults
        self._memo: Dict[RunKey, SimResult] = {}

    # ------------------------------------------------------------- memo
    def clear_memo(self) -> None:
        """Drop the in-process memo (disk cache is unaffected)."""
        self._memo.clear()

    def _emit(self, kind: str, key: RunKey, **kw) -> None:
        self.events.emit(kind, key.describe(),
                         config_fingerprint(key.config)[:12], **kw)

    def _lookup(self, key: RunKey) -> Optional[SimResult]:
        if key in self._memo:
            self._emit("cache_hit", key, detail="memo")
            return self._memo[key]
        if self.cache is not None:
            result = self.cache.get(key)
            if result is not None:
                self._memo[key] = result
                self._emit("cache_hit", key, detail="disk")
                return result
        return None

    def _store(self, key: RunKey, result: SimResult) -> None:
        self._memo[key] = result
        if self.cache is not None and not self._perturbed():
            self.cache.put(key, result)

    def _perturbed(self) -> bool:
        return self.faults is not None and self.faults.affects_simulation

    def _retry_delay(self, attempt: int) -> float:
        return self.backoff_s * (2 ** (attempt - 1)) if self.backoff_s else 0.0

    # -------------------------------------------------------- execution
    def run(self, key: RunKey, use_cache: bool = True) -> SimResult:
        """Execute one cell inline (cache layers apply unless disabled)."""
        if use_cache:
            hit = self._lookup(key)
            if hit is not None:
                return hit
        self._emit("queued", key)
        return self._run_inline(key, use_cache)

    def _run_inline(self, key: RunKey, use_cache: bool) -> SimResult:
        attempt = 0
        while True:
            attempt += 1
            self._emit("started", key, attempt=attempt)
            t0 = time.perf_counter()
            try:
                result = call_with_timeout(
                    lambda: _worker(key, None, self.faults, attempt),
                    self.timeout_s,
                )
            except Exception as exc:
                wall = time.perf_counter() - t0
                if (attempt <= self.retries
                        and classify(exc) is FailureKind.TRANSIENT):
                    self._emit("retry", key, attempt=attempt, wall_s=wall,
                               error=repr(exc))
                    delay = self._retry_delay(attempt)
                    if delay:
                        time.sleep(delay)
                    continue
                self._emit("failed", key, attempt=attempt, wall_s=wall,
                           error=repr(exc))
                raise
            if use_cache:
                self._store(key, result)
            self._emit("finished", key, attempt=attempt,
                       wall_s=time.perf_counter() - t0)
            return result

    def run_many(self, keys: Sequence[RunKey],
                 use_cache: bool = True) -> Dict[RunKey, SimResult]:
        """Execute a batch of cells, deduplicated, cache-first (fail-fast).

        Returns a dict covering every distinct key.  Raises
        :class:`CellError` (after cancelling outstanding work) if any
        cell still fails once its retry budget is spent.
        """
        results, failures = self._run_batch(keys, use_cache,
                                            record=False, on_complete=None)
        assert not failures  # fail-fast mode raises instead
        return results

    def run_recorded(
        self,
        keys: Sequence[RunKey],
        use_cache: bool = True,
        on_complete: Optional[
            Callable[[RunKey, Optional[SimResult],
                      Optional[CellFailure]], None]] = None,
    ) -> Tuple[Dict[RunKey, SimResult], Dict[RunKey, CellFailure]]:
        """Execute a batch, recording failures instead of raising.

        Every distinct key ends up in exactly one of the two returned
        dicts.  ``on_complete(key, result, failure)`` fires as each cell
        resolves (including cache hits), which is what sweep journaling
        hooks into; exactly one of ``result``/``failure`` is non-None.
        """
        return self._run_batch(keys, use_cache, record=True,
                               on_complete=on_complete)

    def _run_batch(self, keys, use_cache, record, on_complete):
        ordered: List[RunKey] = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        results: Dict[RunKey, SimResult] = {}
        failures: Dict[RunKey, CellFailure] = {}
        pending: List[RunKey] = []

        def resolve(key, result=None, failure=None):
            if result is not None:
                results[key] = result
            else:
                failures[key] = failure
            if on_complete is not None:
                on_complete(key, result, failure)

        for key in ordered:
            hit = self._lookup(key) if use_cache else None
            if hit is not None:
                resolve(key, result=hit)
            else:
                self._emit("queued", key)
                pending.append(key)
        if not pending:
            return results, failures
        if self.jobs == 1 or len(pending) == 1:
            for key in pending:
                try:
                    result = self._run_inline(key, use_cache)
                except Exception as exc:
                    if not record:
                        raise
                    kind = classify(exc)
                    tried = (1 if kind is FailureKind.PERMANENT
                             else self.retries + 1)
                    resolve(key, failure=CellFailure(key, exc, kind, tried))
                else:
                    resolve(key, result=result)
        else:
            self._run_parallel(pending, use_cache, record, resolve)
        return results, failures

    def _run_parallel(self, keys: List[RunKey], use_cache: bool,
                      record: bool, resolve) -> None:
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(keys))
        attempts: Dict[RunKey, int] = {k: 0 for k in keys}
        started_at: Dict[RunKey, float] = {}
        future_key: Dict[object, RunKey] = {}
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

        def submit(key: RunKey) -> None:
            attempts[key] += 1
            self._emit("started", key, attempt=attempts[key])
            started_at[key] = time.perf_counter()
            future_key[pool.submit(_worker, key, self.timeout_s,
                                   self.faults, attempts[key])] = key

        try:
            for key in keys:
                submit(key)
            while future_key:
                done, _ = wait(list(future_key), return_when=FIRST_COMPLETED)
                resubmit: List[RunKey] = []
                broken = False
                for fut in done:
                    key = future_key.pop(fut)
                    wall = time.perf_counter() - started_at[key]
                    try:
                        result = fut.result()
                    except Exception as exc:
                        broken = broken or isinstance(exc, BrokenProcessPool)
                        retryable = (classify(exc) is FailureKind.TRANSIENT
                                     and attempts[key] <= self.retries)
                        if retryable:
                            self._emit("retry", key, attempt=attempts[key],
                                       wall_s=wall, error=repr(exc))
                            resubmit.append(key)
                            continue
                        self._emit("failed", key, attempt=attempts[key],
                                   wall_s=wall, error=repr(exc))
                        if not record:
                            raise CellError(key, exc,
                                            attempts[key]) from exc
                        resolve(key, failure=CellFailure(
                            key, exc, classify(exc), attempts[key]))
                    else:
                        if use_cache:
                            self._store(key, result)
                        self._emit("finished", key, attempt=attempts[key],
                                   wall_s=wall)
                        resolve(key, result=result)
                if broken:
                    # A worker died hard: the executor is unusable and
                    # every in-flight future is doomed.  Rebuild the pool
                    # and resubmit what had not finished.
                    pool.shutdown(wait=False, cancel_futures=True)
                    resubmit.extend(future_key.values())
                    future_key.clear()
                    pool = ProcessPoolExecutor(max_workers=workers,
                                               mp_context=ctx)
                if resubmit:
                    delay = self._retry_delay(
                        max(attempts[k] for k in resubmit))
                    if delay:
                        time.sleep(delay)
                    for key in resubmit:
                        submit(key)
        finally:
            # Join the workers: when a batch returns, no worker process
            # is left behind (the serve layer's graceful-drain contract
            # asserts this).  At this point every future has resolved,
            # so the workers are idle and exit immediately.
            pool.shutdown(wait=True, cancel_futures=True)
