"""Execution engine: runs experiment-matrix cells, serially or in parallel.

:class:`ExecutionEngine` owns three layers of reuse and resilience:

* an **in-process memo** (`RunKey` → the exact `SimResult` object), so
  repeated lookups inside one process return the identical object —
  the contract the analysis layer has always had;
* an optional **persistent cache** (:class:`repro.exec.cache.ResultCache`)
  shared across processes and invocations;
* a **spawn-safe process pool** (``jobs > 1``) with a per-task timeout
  (delivered via ``SIGALRM`` inside the worker, so a wedged simulation
  cannot wedge the pool), bounded retry on worker failure, and recovery
  from a broken pool (a worker dying hard re-creates the pool and
  resubmits the in-flight cells).  With ``jobs=1`` everything runs
  inline in the calling process — no subprocess is ever spawned.

The module-level :func:`execute_cell` is the single place that maps a
:class:`RunKey` onto a simulation; it is importable by name so the
``spawn`` start method can pickle tasks to fresh interpreters.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache, RunKey, config_fingerprint
from repro.exec.events import EventLog
from repro.prefetch.factory import make_prefetcher
from repro.sim.gpu import SimResult, simulate
from repro.workloads import build


class IncompleteRunError(RuntimeError):
    """The simulation hit the cycle limit before completing."""


class CellTimeout(RuntimeError):
    """A cell exceeded the engine's per-task timeout."""


class CellError(RuntimeError):
    """A cell failed after exhausting its retry budget."""

    def __init__(self, key: RunKey, cause: BaseException, attempts: int):
        super().__init__(
            f"{key.describe()} failed after {attempts} attempt(s): {cause!r}"
        )
        self.key = key
        self.cause = cause
        self.attempts = attempts


def execute_cell(key: RunKey) -> SimResult:
    """Simulate one matrix cell (no caching; raises on incomplete runs)."""
    kernel = build(key.benchmark, key.scale)
    factory = (make_prefetcher(key.prefetcher)
               if key.prefetcher != "none" else None)
    result = simulate(kernel, key.config, factory)
    if not result.completed:
        raise IncompleteRunError(
            f"{key.benchmark}/{key.prefetcher} hit the cycle limit "
            f"({key.config.max_cycles}) before completing"
        )
    return result


def call_with_timeout(fn: Callable[[], SimResult],
                      timeout_s: Optional[float]) -> SimResult:
    """Run ``fn`` under a ``SIGALRM`` deadline (main thread only)."""
    if not timeout_s:
        return fn()

    def _expired(signum, frame):
        raise CellTimeout(f"cell exceeded the {timeout_s}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _worker(key: RunKey, timeout_s: Optional[float]) -> SimResult:
    """Pool entry point: one cell, with the per-task deadline armed."""
    return call_with_timeout(lambda: execute_cell(key), timeout_s)


class ExecutionEngine:
    """Executes :class:`RunKey` cells with caching, retry and parallelism.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`run_many`; ``1`` (the default) runs
        every cell inline.
    cache:
        Optional persistent :class:`ResultCache` shared across
        processes/invocations.  ``None`` keeps only the in-process memo.
    events:
        :class:`EventLog` receiving the telemetry stream (one is created
        if omitted).
    timeout_s:
        Per-cell wall-time budget, enforced inside workers (and inline
        when running serially).
    retries:
        How many times a failing cell is resubmitted before
        :class:`CellError` is raised.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        events: Optional[EventLog] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.events = events if events is not None else EventLog()
        self.timeout_s = timeout_s
        self.retries = retries
        self._memo: Dict[RunKey, SimResult] = {}

    # ------------------------------------------------------------- memo
    def clear_memo(self) -> None:
        self._memo.clear()

    def _emit(self, kind: str, key: RunKey, **kw) -> None:
        self.events.emit(kind, key.describe(),
                         config_fingerprint(key.config)[:12], **kw)

    def _lookup(self, key: RunKey) -> Optional[SimResult]:
        if key in self._memo:
            self._emit("cache_hit", key, detail="memo")
            return self._memo[key]
        if self.cache is not None:
            result = self.cache.get(key)
            if result is not None:
                self._memo[key] = result
                self._emit("cache_hit", key, detail="disk")
                return result
        return None

    def _store(self, key: RunKey, result: SimResult) -> None:
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result)

    # -------------------------------------------------------- execution
    def run(self, key: RunKey, use_cache: bool = True) -> SimResult:
        """Execute one cell inline (cache layers apply unless disabled)."""
        if use_cache:
            hit = self._lookup(key)
            if hit is not None:
                return hit
        self._emit("queued", key)
        return self._run_inline(key, use_cache)

    def _run_inline(self, key: RunKey, use_cache: bool) -> SimResult:
        self._emit("started", key)
        t0 = time.perf_counter()
        try:
            result = call_with_timeout(lambda: execute_cell(key),
                                       self.timeout_s)
        except Exception as exc:
            self._emit("failed", key, wall_s=time.perf_counter() - t0,
                       error=repr(exc))
            raise
        if use_cache:
            self._store(key, result)
        self._emit("finished", key, wall_s=time.perf_counter() - t0)
        return result

    def run_many(self, keys: Sequence[RunKey],
                 use_cache: bool = True) -> Dict[RunKey, SimResult]:
        """Execute a batch of cells, deduplicated, cache-first.

        Returns a dict covering every distinct key.  Raises
        :class:`CellError` (after cancelling outstanding work) if any
        cell still fails once its retry budget is spent.
        """
        ordered: List[RunKey] = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        results: Dict[RunKey, SimResult] = {}
        pending: List[RunKey] = []
        for key in ordered:
            hit = self._lookup(key) if use_cache else None
            if hit is not None:
                results[key] = hit
            else:
                self._emit("queued", key)
                pending.append(key)
        if not pending:
            return results
        if self.jobs == 1 or len(pending) == 1:
            for key in pending:
                results[key] = self._run_inline(key, use_cache)
        else:
            results.update(self._run_parallel(pending, use_cache))
        return results

    def _run_parallel(self, keys: List[RunKey],
                      use_cache: bool) -> Dict[RunKey, SimResult]:
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(keys))
        results: Dict[RunKey, SimResult] = {}
        attempts: Dict[RunKey, int] = {k: 0 for k in keys}
        started_at: Dict[RunKey, float] = {}
        future_key: Dict[object, RunKey] = {}
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

        def submit(key: RunKey) -> None:
            attempts[key] += 1
            self._emit("started", key, attempt=attempts[key])
            started_at[key] = time.perf_counter()
            future_key[pool.submit(_worker, key, self.timeout_s)] = key

        try:
            for key in keys:
                submit(key)
            while future_key:
                done, _ = wait(list(future_key), return_when=FIRST_COMPLETED)
                resubmit: List[RunKey] = []
                broken = False
                for fut in done:
                    key = future_key.pop(fut)
                    wall = time.perf_counter() - started_at[key]
                    try:
                        result = fut.result()
                    except Exception as exc:
                        broken = broken or isinstance(exc, BrokenProcessPool)
                        if attempts[key] > self.retries:
                            self._emit("failed", key, attempt=attempts[key],
                                       wall_s=wall, error=repr(exc))
                            raise CellError(key, exc, attempts[key]) from exc
                        self._emit("retry", key, attempt=attempts[key],
                                   wall_s=wall, error=repr(exc))
                        resubmit.append(key)
                    else:
                        results[key] = result
                        if use_cache:
                            self._store(key, result)
                        self._emit("finished", key, attempt=attempts[key],
                                   wall_s=wall)
                if broken:
                    # A worker died hard: the executor is unusable and
                    # every in-flight future is doomed.  Rebuild the pool
                    # and resubmit what had not finished.
                    pool.shutdown(wait=False, cancel_futures=True)
                    resubmit.extend(future_key.values())
                    future_key.clear()
                    pool = ProcessPoolExecutor(max_workers=workers,
                                               mp_context=ctx)
                for key in resubmit:
                    submit(key)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results
