"""Crash-safe sweep journal: per-task completion records on disk.

A sweep over N matrix cells appends one JSON line per resolved cell to
``<cache-root>/sweeps/<sweep-id>.jsonl``, flushed at every append, so a
killed process loses at most the line being written.  ``sweep-id`` is a
content hash over the *sorted set* of cell fingerprints — the same
matrix always journals to the same file, regardless of iteration order,
which is what makes ``repro sweep --resume`` find its predecessor.

On resume the journal is re-read (tolerating a torn trailing line from
the crash) and:

* cells journaled ``done`` are served from the persistent result cache
  (their entries were written before the journal line), so they are
  never re-simulated;
* cells journaled ``failed`` with a *permanent* kind are re-reported
  from the journal without burning cycles on a deterministic failure;
* everything else — unjournaled cells, and transient failures that may
  have been environmental — is (re-)executed.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import FailureKind

SWEEPS_DIRNAME = "sweeps"


def sweep_id(fingerprints: Iterable[str]) -> str:
    """Stable identity of a sweep: hash of its sorted cell fingerprints."""
    h = hashlib.sha256()
    for fp in sorted(fingerprints):
        h.update(fp.encode())
        h.update(b"\n")
    return h.hexdigest()[:16]


class SweepJournal:
    """Append-only JSONL record of one sweep's per-cell outcomes."""

    def __init__(self, root: Any, sweep: str):
        self.sweep = sweep
        self.path = (pathlib.Path(root) / SWEEPS_DIRNAME
                     / f"{sweep}.jsonl")
        self._fh = None

    # ----------------------------------------------------------- writing
    def record(
        self,
        fingerprint: str,
        cell: str,
        status: str,
        *,
        kind: Optional[FailureKind] = None,
        error: Optional[str] = None,
        attempts: Optional[int] = None,
        bundle: Optional[str] = None,
    ) -> None:
        """Append one outcome line (``status`` is ``done`` or ``failed``)
        and flush it to disk immediately."""
        entry: Dict[str, Any] = {
            "fp": fingerprint, "cell": cell, "status": status,
        }
        if kind is not None:
            entry["kind"] = kind.value
        if error is not None:
            entry["error"] = error
        if attempts is not None:
            entry["attempts"] = attempts
        if bundle is not None:
            entry["bundle"] = bundle
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- reading
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Parse the journal into ``fingerprint -> last entry``.

        Corrupt or torn lines (a crash mid-append, manual edits) are
        skipped: a damaged journal degrades to re-running more cells,
        never to a crash or a wrong result.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            lines = self.path.read_text().splitlines()
        except (FileNotFoundError, OSError):
            return entries
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or "fp" not in entry:
                continue
            entries[entry["fp"]] = entry
        return entries

    def completed(self) -> List[str]:
        """Fingerprints whose last journaled status is ``done``."""
        return [fp for fp, e in self.load().items()
                if e.get("status") == "done"]

    def permanent_failures(self) -> Dict[str, Dict[str, Any]]:
        """``fingerprint -> entry`` for journaled permanent failures."""
        return {
            fp: e for fp, e in self.load().items()
            if (e.get("status") == "failed"
                and e.get("kind") == FailureKind.PERMANENT.value)
        }
