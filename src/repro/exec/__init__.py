"""Parallel experiment-execution engine with a persistent result cache.

Every figure of the paper is a view over the same
(benchmark × prefetcher × scale × config) simulation matrix, so the
execution layer is factored out of the analysis code:

* :mod:`repro.exec.cache` — :class:`RunKey` (one cell of the matrix),
  stable content hashing of :class:`repro.config.GPUConfig`, lossless
  JSON serialization of :class:`repro.sim.gpu.SimResult`, and the
  on-disk :class:`ResultCache` under ``.repro-cache/``;
* :mod:`repro.exec.events` — the progress/telemetry event stream
  (queued / started / cache_hit / finished / retry / failed) with a
  JSONL sink and a TTY renderer;
* :mod:`repro.exec.runner` — :class:`ExecutionEngine`, which executes
  cells serially or on a spawn-safe process pool with per-task timeout
  and classification-aware bounded retry (fail-fast ``run_many`` or
  record-and-continue ``run_recorded``);
* :mod:`repro.exec.journal` — :class:`SweepJournal`, the crash-safe
  per-cell completion record that ``repro sweep --resume`` replays.

See ``docs/execution.md`` and ``docs/robustness.md`` for the design.
"""

from repro.errors import IncompleteRunError
from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    CacheEntryInfo,
    GCReport,
    ResultCache,
    RunKey,
    config_fingerprint,
    deserialize_result,
    key_fingerprint,
    result_bytes,
    serialize_result,
)
from repro.exec.events import (
    EventLog,
    ExecEvent,
    JSONLSink,
    TTYProgress,
    read_events,
)
from repro.exec.journal import SweepJournal, sweep_id
from repro.exec.runner import (
    CellError,
    CellFailure,
    CellTimeout,
    ExecutionEngine,
    execute_cell,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunKey",
    "config_fingerprint",
    "deserialize_result",
    "key_fingerprint",
    "serialize_result",
    "CacheEntryInfo",
    "GCReport",
    "result_bytes",
    "EventLog",
    "ExecEvent",
    "JSONLSink",
    "TTYProgress",
    "read_events",
    "CellError",
    "CellFailure",
    "CellTimeout",
    "ExecutionEngine",
    "IncompleteRunError",
    "SweepJournal",
    "sweep_id",
    "execute_cell",
]
