"""Persistent on-disk result cache keyed by run-content hashes.

A :class:`RunKey` names one cell of the experiment matrix.  Its cache
identity is a SHA-256 over the *content* of the cell — benchmark,
prefetcher, scale and every field of the :class:`~repro.config.GPUConfig`
(enums flattened to their values) — so two configs that compare equal
always hash equal, regardless of how they were constructed, and any
config change (a cache knob, a scheduler, a queue depth) produces a new
cache entry instead of silently reusing a stale one.

Layout::

    .repro-cache/
      v3/                      # bumping CACHE_SCHEMA_VERSION retires
        <key-hash>.json        # every old entry wholesale
        ...

Each entry embeds the key description and the config hash it was
computed under; :meth:`ResultCache.get` re-derives the hash and treats
any mismatch (or unreadable/corrupt/truncated file) as a miss, logging
and deleting the bad entry — a mangled cache can degrade a sweep to
re-simulation but can never poison it or crash it.  Writes are atomic
(temp file + ``os.replace``) so a killed sweep can never leave a
half-written entry behind.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
import pathlib
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional

from repro.config import GPUConfig
from repro.prefetch.stats import PrefetchStats
from repro.sim.gpu import SimResult
from repro.sim.sm import SMStats
from repro.workloads import Scale

log = logging.getLogger(__name__)

#: Bump whenever the serialized form of SimResult (or the key content
#: that feeds the hash) changes incompatibly; old entries are ignored.
#: v2: GPUConfig grew the guard knobs (hang_cycles, deep_checks) and
#: SimResult.extra may hold structured snapshots.
#: v3: GPUConfig grew the observability knobs (obs.*) and SimResult.extra
#: may hold timeseries/trace/profile payloads (see repro.obs).
#: v4: GPUConfig grew the concurrent-kernel knobs (multi.*), RunKey
#: benchmarks may be co-run pairs ("A+B") and SimResult.extra may hold
#: per-kernel sub-records — single-kernel v3 entries must never be
#: served for a co-run request (or vice versa).
CACHE_SCHEMA_VERSION = 4

DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class RunKey:
    """One cell of the (benchmark × prefetcher × scale × config) matrix."""

    benchmark: str
    prefetcher: str
    scale: Scale
    config: GPUConfig

    def describe(self) -> str:
        """Short human-readable cell label for logs and errors."""
        return (f"{self.benchmark}/{self.prefetcher}"
                f"@{self.scale.value}/{self.config.scheduler.value}")


def _jsonify(obj: Any) -> Any:
    """Recursively flatten dataclasses/enums into JSON-encodable values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonify(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    return obj


def _canonical(obj: Any) -> str:
    return json.dumps(_jsonify(obj), sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=None)
def config_fingerprint(config: GPUConfig) -> str:
    """Stable content hash of every field of a :class:`GPUConfig`."""
    return hashlib.sha256(_canonical(config).encode()).hexdigest()


def key_fingerprint(key: RunKey) -> str:
    """Stable content hash identifying one cache entry."""
    payload = _canonical({
        "schema": CACHE_SCHEMA_VERSION,
        "benchmark": key.benchmark,
        "prefetcher": key.prefetcher,
        "scale": key.scale.value,
        "config": config_fingerprint(key.config),
    })
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------- serialization
def serialize_result(result: SimResult) -> Dict[str, Any]:
    """Lossless JSON form of a :class:`SimResult` (stats included)."""
    out = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(SimResult)
    }
    out["sm_stats"] = dataclasses.asdict(result.sm_stats)
    out["prefetch_stats"] = dataclasses.asdict(result.prefetch_stats)
    out["extra"] = dict(result.extra)
    return out


def deserialize_result(payload: Dict[str, Any]) -> SimResult:
    """Inverse of :func:`serialize_result`."""
    data = dict(payload)
    data["sm_stats"] = SMStats(**data["sm_stats"])
    data["prefetch_stats"] = PrefetchStats(**data["prefetch_stats"])
    return SimResult(**data)


def result_bytes(result: SimResult) -> bytes:
    """Canonical byte serialization (the determinism-test currency)."""
    return _canonical(serialize_result(result)).encode()


class ResultCache:
    """Persistent :class:`RunKey` → :class:`SimResult` cache.

    ``hits``/``misses``/``invalidated`` count lookups since construction
    (telemetry and tests read them).
    """

    def __init__(self, root: Any = DEFAULT_CACHE_DIR, faults: Any = None):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        # Chaos hook: a FaultPlan with corrupt_cache_rate > 0 truncates
        # a seeded fraction of entries right after they are written,
        # exercising the corrupt-entry-as-miss path end to end.
        self._fault_plan = faults
        self._fault_rng = (faults.stream("cache")
                           if faults is not None else None)

    @property
    def version_dir(self) -> pathlib.Path:
        """Schema-versioned subdirectory holding the cached cells."""
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def path_for(self, key: RunKey) -> pathlib.Path:
        """On-disk path of the cache entry for ``key``."""
        return self.version_dir / f"{key_fingerprint(key)}.json"

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*.json"))

    def get(self, key: RunKey) -> Optional[SimResult]:
        """Load a cached result, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._invalidate(path, "unreadable or truncated entry")
            return None
        if not isinstance(payload, dict):
            self._invalidate(path, "entry is not a JSON object")
            return None
        entry_key = payload.get("key", {})
        if not isinstance(entry_key, dict):
            self._invalidate(path, "malformed key block")
            return None
        if (payload.get("schema") != CACHE_SCHEMA_VERSION
                or entry_key.get("config_hash")
                != config_fingerprint(key.config)):
            self._invalidate(path, "schema or config-hash mismatch")
            return None
        try:
            result = deserialize_result(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self._invalidate(path, "undeserializable result payload")
            return None
        self.hits += 1
        return result

    def _invalidate(self, path: pathlib.Path, reason: str) -> None:
        self.misses += 1
        self.invalidated += 1
        log.warning("evicting corrupt cache entry %s: %s", path.name, reason)
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: RunKey, result: SimResult) -> pathlib.Path:
        """Atomically persist ``result``; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": {
                "benchmark": key.benchmark,
                "prefetcher": key.prefetcher,
                "scale": key.scale.value,
                "scheduler": key.config.scheduler.value,
                "config_hash": config_fingerprint(key.config),
            },
            "result": serialize_result(result),
        }
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, indent=1))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        if (self._fault_rng is not None
                and self._fault_plan.should_corrupt_cache(self._fault_rng)):
            # Truncate mid-payload: a syntactically broken entry that the
            # next get() must evict and treat as a miss.
            data = path.read_text()
            path.write_text(data[: max(1, len(data) // 3)])
        return path

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        removed = 0
        if self.version_dir.is_dir():
            for p in self.version_dir.glob("*.json"):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -------------------------------------------------------- maintenance
    def entries(self) -> List["CacheEntryInfo"]:
        """Stat every entry of the current schema (oldest first).

        Entries that vanish mid-scan (a concurrent gc or clear) are
        skipped rather than raised.
        """
        out: List[CacheEntryInfo] = []
        if not self.version_dir.is_dir():
            return out
        for path in self.version_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(CacheEntryInfo(path=path, size_bytes=stat.st_size,
                                      mtime=stat.st_mtime))
        out.sort(key=lambda e: (e.mtime, e.path.name))
        return out

    def disk_stats(self) -> Dict[str, Any]:
        """On-disk usage summary (the ``repro cache stats`` payload)."""
        entries = self.entries()
        total = sum(e.size_bytes for e in entries)
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA_VERSION,
            "entries": len(entries),
            "total_bytes": total,
            "oldest_mtime": entries[0].mtime if entries else None,
            "newest_mtime": entries[-1].mtime if entries else None,
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
        }

    def gc(self, max_bytes: Optional[int] = None,
           older_than_s: Optional[float] = None,
           now: Optional[float] = None) -> "GCReport":
        """Evict entries by age and/or total size; returns a report.

        Two independent policies, applied in order:

        1. ``older_than_s`` — delete every entry whose mtime is older
           than ``now - older_than_s``.  Entries at or newer than the
           cutoff are **never** deleted by this pass, regardless of
           size pressure from the second pass being disabled.
        2. ``max_bytes`` — delete oldest-first until the surviving
           total is at or under the budget.

        Each eviction is a single atomic ``unlink``; a reader racing a
        gc sees either the complete entry or a miss, never a torn file.
        Entries that disappear mid-gc (concurrent maintenance) are
        counted as already gone.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0 (got {max_bytes})")
        if older_than_s is not None and older_than_s < 0:
            raise ValueError(
                f"older_than_s must be >= 0 (got {older_than_s})")
        moment = time.time() if now is None else now
        entries = self.entries()
        removed: List[CacheEntryInfo] = []
        kept: List[CacheEntryInfo] = []
        if older_than_s is not None:
            cutoff = moment - older_than_s
            for entry in entries:
                if entry.mtime < cutoff:
                    removed.append(entry)
                else:
                    kept.append(entry)
        else:
            kept = list(entries)
        if max_bytes is not None:
            total = sum(e.size_bytes for e in kept)
            survivors: List[CacheEntryInfo] = []
            for i, entry in enumerate(kept):  # oldest first
                if total > max_bytes:
                    removed.append(entry)
                    total -= entry.size_bytes
                else:
                    survivors.extend(kept[i:])
                    break
            kept = survivors
        for entry in removed:
            try:
                entry.path.unlink()
            except OSError:
                pass
        return GCReport(
            removed=len(removed),
            removed_bytes=sum(e.size_bytes for e in removed),
            kept=len(kept),
            kept_bytes=sum(e.size_bytes for e in kept),
        )


@dataclass(frozen=True)
class CacheEntryInfo:
    """Stat record of one on-disk cache entry."""

    path: pathlib.Path
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class GCReport:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    removed: int
    removed_bytes: int
    kept: int
    kept_bytes: int
