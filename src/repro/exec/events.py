"""Progress/telemetry event stream for the execution engine.

Every state transition of a matrix cell emits one :class:`ExecEvent`:

``queued``
    the cell was accepted for execution (not served from cache);
``started``
    a simulation for the cell began (on a worker or inline) — the count
    of ``started`` events is therefore the number of simulations a run
    actually performed, which is what the warm-cache acceptance check
    asserts is zero;
``cache_hit``
    the cell was served from the in-process memo or the persistent
    cache (``detail`` says which);
``finished``
    the simulation completed (``wall_s`` holds the cell wall time);
``retry``
    the attempt failed and the cell was resubmitted;
``failed``
    the cell failed after its retry budget was exhausted.

:class:`EventLog` records events in order and fans them out to
subscribers; :class:`JSONLSink` appends them to a JSON-lines file and
:class:`TTYProgress` renders a one-line-per-cell progress view.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, List

EVENT_KINDS = ("queued", "started", "cache_hit", "finished", "retry",
               "failed")


@dataclass(frozen=True)
class ExecEvent:
    """One state transition of one matrix cell."""

    kind: str
    cell: str           #: e.g. ``CNV/caps@small/pas``
    config_hash: str    #: short config fingerprint
    seq: int            #: monotonic per-log sequence number
    ts: float           #: wall-clock timestamp (time.time())
    attempt: int = 1
    wall_s: float = 0.0
    error: str = ""
    detail: str = ""    #: e.g. cache_hit source ("memo" / "disk")


class EventLog:
    """Ordered in-memory event record with subscriber fan-out."""

    def __init__(self):
        self.events: List[ExecEvent] = []
        self._subscribers: List[Callable[[ExecEvent], None]] = []
        self._seq = 0

    def subscribe(self, fn: Callable[[ExecEvent], None]) -> None:
        """Register a callback invoked for every emitted event."""
        self._subscribers.append(fn)

    def emit(self, kind: str, cell: str, config_hash: str = "", *,
             attempt: int = 1, wall_s: float = 0.0, error: str = "",
             detail: str = "") -> ExecEvent:
        """Record an event and fan it out to subscribers."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = ExecEvent(
            kind=kind, cell=cell, config_hash=config_hash, seq=self._seq,
            ts=time.time(), attempt=attempt, wall_s=wall_s, error=error,
            detail=detail,
        )
        self._seq += 1
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    # ---------------------------------------------------------- queries
    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for e in self.events if e.kind == kind)

    def cells(self, kind: str) -> List[str]:
        """Cell labels of every recorded event of ``kind``."""
        return [e.cell for e in self.events if e.kind == kind]

    def simulations(self) -> int:
        """Number of simulations actually performed (``started`` events)."""
        return self.count("started")

    def total_wall(self) -> float:
        """Summed per-cell wall time of completed simulations."""
        return sum(e.wall_s for e in self.events if e.kind == "finished")


class JSONLSink:
    """Append events to a JSON-lines telemetry file.

    Crash-durability contract: every event is written as one line and
    flushed immediately, and :meth:`close` fsyncs before closing — a
    killed server or worker leaves a log whose every complete line
    parses, losing at most the line being written at the instant of
    death.  :func:`read_events` is the matching tolerant reader.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")

    def __call__(self, event: ExecEvent) -> None:
        self._fh.write(json.dumps(asdict(event), sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Flush, fsync and close the underlying JSONL file."""
        if self._fh.closed:
            return
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - e.g. a pipe target
            pass
        self._fh.close()


def read_events(path) -> List[ExecEvent]:
    """Parse a JSONL event log, tolerating a torn trailing line.

    The sink flushes per event, so a crash can only tear the *final*
    line; a truncated tail is silently dropped.  A malformed line
    anywhere else means the file is not a sink-written log (or was
    corrupted in place) and raises :class:`ValueError`.
    """
    events: List[ExecEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            events.append(ExecEvent(**payload))
        except (json.JSONDecodeError, TypeError) as exc:
            if lineno == len(lines) - 1:
                break  # torn tail from a kill mid-write
            raise ValueError(
                f"{path}: malformed event on line {lineno + 1}: {exc}"
            ) from exc
    return events


class TTYProgress:
    """One line per completed cell: ``[done/total] cell: status``."""

    _TERMINAL = ("finished", "cache_hit", "failed")

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0

    def __call__(self, event: ExecEvent) -> None:
        if event.kind == "queued":
            self.total += 1
            return
        if event.kind == "cache_hit":
            self.total += 1
        elif event.kind == "retry":
            print(f"  retry {event.cell} (attempt {event.attempt} "
                  f"failed: {event.error})", file=self.stream)
            return
        if event.kind not in self._TERMINAL:
            return
        self.done += 1
        if event.kind == "finished":
            status = f"{event.wall_s:.2f}s"
        elif event.kind == "cache_hit":
            status = f"cached ({event.detail})"
        else:
            status = f"FAILED: {event.error}"
        total = max(self.total, self.done)
        print(f"[{self.done:>3}/{total:>3}] {event.cell}: {status}",
              file=self.stream)
