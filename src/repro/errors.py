"""Failure taxonomy shared by the simulator, the guard layer and the
execution engine.

Every failure a sweep can encounter is classified into exactly one of
two kinds:

``TRANSIENT``
    environmental and worth retrying — a worker process died, a cell
    exceeded its wall-clock budget, the process pool broke.  The
    execution engine retries these with bounded exponential backoff.
``PERMANENT``
    deterministic — re-running the same cell would fail the same way
    (a wedged simulation, a violated invariant, an invalid config).
    Resilient sweeps record these and continue; retrying would only
    burn time.

The classifier is intentionally conservative: an exception it does not
recognize defaults to ``TRANSIENT`` so that a crash of unknown origin
still gets its retry budget before the cell is declared failed.

Exception classes that carry structured payloads (:class:`SimulationHangError`
snapshots, :class:`IncompleteRunError` results) implement ``__reduce__``
so they survive pickling across the process-pool boundary.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional


class FailureKind(enum.Enum):
    TRANSIENT = "transient"
    PERMANENT = "permanent"


class ReproError(RuntimeError):
    """Base class of every structured error this package raises.

    Subclasses :class:`RuntimeError` so pre-taxonomy call sites that
    catch ``RuntimeError`` around a simulation keep working.
    """


class TransientError(ReproError):
    """An environmental failure; retrying the operation may succeed."""


class PermanentError(ReproError):
    """A deterministic failure; retrying cannot succeed."""


class ConfigError(PermanentError, ValueError):
    """An invalid :class:`repro.config.GPUConfig` (or sub-config).

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; the CLI catches it specifically to print
    the actionable message without a traceback.
    """


class SimulationHangError(PermanentError):
    """The watchdog detected no forward progress for too many cycles.

    Carries a JSON-able diagnostic ``snapshot`` (see
    :func:`repro.guard.watchdog.build_snapshot`), the ``cycle`` the hang
    was declared at, and ``stalled_for`` — the cycles elapsed since the
    last observed progress.
    """

    def __init__(self, message: str, snapshot: Optional[Dict[str, Any]] = None,
                 cycle: int = -1, stalled_for: int = 0):
        super().__init__(message)
        self.snapshot = snapshot or {}
        self.cycle = cycle
        self.stalled_for = stalled_for

    def __reduce__(self):
        return (self.__class__,
                (self.args[0], self.snapshot, self.cycle, self.stalled_for))


class InvariantViolation(PermanentError):
    """A runtime conservation/consistency check failed.

    ``name`` identifies the invariant; ``details`` holds the offending
    counters (JSON-able).
    """

    def __init__(self, message: str, name: str = "",
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.name = name
        self.details = details or {}

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.name, self.details))


class IncompleteRunError(PermanentError):
    """The simulation hit the cycle limit before completing.

    ``result`` (when present) is the truncated
    :class:`repro.sim.gpu.SimResult`, whose ``extra["hang_snapshot"]``
    holds the end-of-run diagnostic snapshot.
    """

    def __init__(self, message: str, result: Any = None):
        super().__init__(message)
        self.result = result

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.result))


class RequestError(ReproError):
    """Base class of request-level failures in the serving layer.

    Every subclass carries a stable wire ``code`` — the ``error.code``
    field of a :mod:`repro.serve.protocol` error response — so clients
    can react programmatically (back off on ``overloaded``, fix the
    payload on ``bad_request``) without parsing messages.
    """

    #: Stable protocol error code (overridden by every subclass).
    code = "internal"


class BadRequestError(RequestError, PermanentError):
    """The request payload is malformed or names unknown entities.

    Deterministic: resubmitting the same payload fails the same way.
    """

    code = "bad_request"


class OverloadedError(RequestError, TransientError):
    """The server's admission queue is full; the request was shed.

    Transient by definition — the same request may succeed once load
    drains.  Clients should back off and retry.
    """

    code = "overloaded"


class DeadlineExceededError(RequestError, TransientError):
    """The request's deadline expired before a result was available.

    The underlying simulation (if one was dispatched) keeps running and
    lands in the cache, so a retry typically completes quickly.
    """

    code = "deadline_exceeded"


class ShuttingDownError(RequestError, TransientError):
    """The server is draining (SIGTERM) and no longer admits requests."""

    code = "shutting_down"


class DegradedError(RequestError, TransientError):
    """No healthy backend can serve the request right now.

    Raised by the fleet router when every candidate backend is down (or
    circuit-open) and the shared disk cache holds no answer either.
    Carries ``retry_after_s`` — the router's hint for how long a client
    should back off before retrying (supervised backends restart on a
    known schedule, so the hint is informed, not arbitrary).
    """

    code = "degraded"

    def __init__(self, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.retry_after_s))


class RequestFailedError(RequestError, PermanentError):
    """The dispatched simulation failed; the failure detail is attached.

    Wraps a :class:`CellFailure`-shaped server-side outcome (a hang, an
    invariant violation, an exhausted retry budget) for the client.
    ``details`` is a JSON-able payload carried verbatim across the wire
    (``error.details`` in the protocol envelope) — for a hang it holds
    the watchdog's diagnostic snapshot, so the client can triage a
    remote wedge exactly as it would a local one.
    """

    code = "simulation_failed"

    def __init__(self, message: str,
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.details = details or {}

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.details))


class InjectedFault(TransientError):
    """Base class of failures raised by the deterministic fault injector."""


class InjectedWorkerCrash(InjectedFault):
    """A fault-plan-scheduled worker crash (transient by construction)."""


def classify(exc: BaseException) -> FailureKind:
    """Map an exception to its :class:`FailureKind`.

    Explicit taxonomy classes win; ``BrokenProcessPool`` (a worker died
    hard) is transient; everything unknown defaults to transient so it
    still receives a bounded retry before being recorded as failed.
    """
    if isinstance(exc, PermanentError):
        return FailureKind.PERMANENT
    if isinstance(exc, TransientError):
        return FailureKind.TRANSIENT
    try:
        from concurrent.futures.process import BrokenProcessPool
        if isinstance(exc, BrokenProcessPool):
            return FailureKind.TRANSIENT
    except ImportError:  # pragma: no cover - stdlib always present
        pass
    return FailureKind.TRANSIENT


def is_transient(exc: BaseException) -> bool:
    return classify(exc) is FailureKind.TRANSIENT
