"""Memory-access coalescing (paper Section II-A).

A warp's 32 lane requests merge into cache-line-sized transactions; a
fully regular warp load touches one or two lines, while divergent
(indirect) loads scatter across many.  Kernel address patterns in this
reproduction already emit one address per coalesced transaction;
:func:`coalesce` deduplicates them into aligned, ordered line addresses.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def coalesce(addresses: Sequence[int], line_bytes: int) -> Tuple[int, ...]:
    """Map byte addresses to unique line-aligned addresses.

    Order of first occurrence is preserved (FR-FCFS and MSHR behaviour
    depend only on the set, but deterministic order keeps runs
    reproducible).
    """
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError("line_bytes must be a positive power of two")
    shift = line_bytes.bit_length() - 1
    seen = {}
    for a in addresses:
        if a < 0:
            raise ValueError(f"negative address {a}")
        line = (a >> shift) << shift
        if line not in seen:
            seen[line] = None
    return tuple(seen.keys())


def coalesced_count(addresses: Sequence[int], line_bytes: int) -> int:
    """Number of memory transactions the warp load generates."""
    return len(coalesce(addresses, line_bytes))
