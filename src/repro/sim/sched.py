"""Warp schedulers: LRR, GTO, two-level, and the prefetch-aware PAS.

The two-level scheduler (paper baseline, [1][2]) keeps a small ready
queue (8 entries in Table III) and a pending pool.  Warps leave the ready
queue when they block on a load and re-enter (FIFO) once their data
returns.  PAS (Section V-A) extends it with: (a) a one-bit leading-warp
marker — one warp per CTA — whose holders are enqueued and scheduled
ahead of trailing warps, so every CTA's base address is discovered as
early as possible; and (b) eager wake-up: when prefetched data fills L1,
the bound warp is promoted into the ready queue, displacing a trailing
ready warp if the queue is full.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.config import GPUConfig, SchedulerKind
from repro.sim.isa import InstrKind
from repro.sim.warp import Warp, WarpState


def _wants_lsu(warp: Warp) -> bool:
    kind = warp.cursor.peek().kind
    return kind is InstrKind.LOAD or kind is InstrKind.STORE


class Scheduler:
    """Common interface; concrete policies override :meth:`pick`."""

    name = "base"

    def __init__(self, config: GPUConfig):
        self.config = config
        self.warps: List[Warp] = []

    def add_warp(self, warp: Warp) -> None:
        """Register a newly launched warp with the scheduler."""
        self.warps.append(warp)

    def remove_warp(self, warp: Warp) -> None:
        """Drop a retired warp from every scheduling structure."""
        self.warps.remove(warp)

    def on_block(self, warp: Warp) -> None:
        """Warp issued a load and is now WAITING_MEM."""

    def on_unblock(self, warp: Warp) -> None:
        """Warp's outstanding load data arrived."""

    def on_prefetch_fill(self, warp: Warp) -> None:
        """Prefetched data bound to ``warp`` arrived (eager wake-up)."""

    def ready_depth(self) -> int:
        """Number of warps the scheduler considers issuable *candidates*
        right now — the ready-queue occupancy for two-level policies, the
        count of READY warps for flat ones.  Sampled by :mod:`repro.obs`;
        not used by the simulator itself."""
        return sum(1 for w in self.warps if w.state is WarpState.READY)

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Select the warp to issue this cycle (``None`` = stall cycle).

        ``lsu_free`` is false while a replayed load/store occupies the
        LSU; warps whose next instruction needs the L1 port are then
        skipped."""
        raise NotImplementedError

    def next_issue_cycle(self) -> int:
        """Earliest cycle at which :meth:`pick` could return a warp,
        assuming no external event (memory response, CTA launch) arrives
        first — the scheduler half of the event engine's next-event
        contract (docs/architecture.md).  Returns a large sentinel when
        every resident warp is blocked.  Must never be later than the
        true next issue (conservative lower bounds are fine)."""
        nxt = 1 << 62
        for w in self.warps:
            if w.state is WarpState.READY and w.ready_at < nxt:
                nxt = w.ready_at
        return nxt

    def _can_issue(self, warp: Warp, now: int, lsu_free: bool) -> bool:
        return warp.issuable(now) and (lsu_free or not _wants_lsu(warp))


class LooseRoundRobin(Scheduler):
    """Classic LRR: rotate through all resident warps."""

    name = "lrr"

    def __init__(self, config: GPUConfig):
        super().__init__(config)
        self._ptr = 0

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Rotate from the last issuer to the next issuable warp."""
        n = len(self.warps)
        for i in range(n):
            warp = self.warps[(self._ptr + i) % n]
            if self._can_issue(warp, now, lsu_free):
                self._ptr = (self._ptr + i + 1) % n
                return warp
        return None


class GreedyThenOldest(Scheduler):
    """GTO: stick with the current warp until it stalls, then oldest."""

    name = "gto"

    def __init__(self, config: GPUConfig):
        super().__init__(config)
        self._current: Optional[Warp] = None

    def remove_warp(self, warp: Warp) -> None:
        """Retire a warp; forget it if it was the greedy target."""
        super().remove_warp(warp)
        if self._current is warp:
            self._current = None

    def on_block(self, warp: Warp) -> None:
        """The greedy warp stalled on memory: release the stickiness."""
        if self._current is warp:
            self._current = None

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Stay greedy on the current warp, else pick the oldest."""
        cur = self._current
        if cur is not None and self._can_issue(cur, now, lsu_free):
            return cur
        for warp in sorted(self.warps, key=lambda w: (w.launch_cycle, w.slot)):
            if self._can_issue(warp, now, lsu_free):
                self._current = warp
                return warp
        return None


class TwoLevel(Scheduler):
    """Two-level scheduler with a bounded ready queue."""

    name = "two_level"

    def __init__(self, config: GPUConfig):
        super().__init__(config)
        self.ready: List[Warp] = []
        self.eligible: Deque[Warp] = deque()
        self._ptr = 0

    @property
    def ready_size(self) -> int:
        """Capacity of the inner ready queue (Table III: 8 entries)."""
        return self.config.ready_queue_size

    def add_warp(self, warp: Warp) -> None:
        """Launch: place the warp in the ready queue or eligible pool."""
        super().add_warp(warp)
        self._enqueue(warp)

    def _enqueue(self, warp: Warp) -> None:
        if len(self.ready) < self.ready_size:
            self.ready.append(warp)
        else:
            self.eligible.append(warp)

    def remove_warp(self, warp: Warp) -> None:
        """Retire a warp from whichever queue currently holds it."""
        super().remove_warp(warp)
        if warp in self.ready:
            self.ready.remove(warp)
        elif warp in self.eligible:
            self.eligible.remove(warp)

    def on_block(self, warp: Warp) -> None:
        """Blocked warps leave both levels (moved to the pending pool)."""
        # A blocked warp holds no queue slot at all (pushed to pending);
        # removing from *both* structures keeps the invariant even for
        # callers that block a warp straight out of the eligible pool.
        if warp in self.ready:
            self.ready.remove(warp)
        elif warp in self.eligible:
            self.eligible.remove(warp)

    def on_unblock(self, warp: Warp) -> None:
        """Returning data re-enqueues the warp at the eligible tail."""
        self.eligible.append(warp)

    def _refill(self) -> None:
        while self.eligible and len(self.ready) < self.ready_size:
            self.ready.append(self.eligible.popleft())

    def ready_depth(self) -> int:
        """Ready-queue occupancy (the paper's 8-entry inner level)."""
        return len(self.ready)

    def next_issue_cycle(self) -> int:
        """Earliest possible issue, considering the ready queue only.

        Exact for two-level policies: eligible-pool warps enter the
        ready queue only through :meth:`_refill` (called at pick time)
        or an eager wake-up — both already covered by the event engine's
        refill-then-scan and response-bound rules."""
        self._refill()
        nxt = 1 << 62
        for w in self.ready:
            if w.ready_at < nxt:
                nxt = w.ready_at
        return nxt

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Refill the ready queue from the pool, then round-robin it."""
        self._refill()
        ready = self.ready
        n = len(ready)
        if n == 0:
            return None
        ptr = self._ptr % n
        READY = WarpState.READY
        LOAD = InstrKind.LOAD
        STORE = InstrKind.STORE
        for i in range(n):
            j = ptr + i
            if j >= n:
                j -= n
            warp = ready[j]
            if warp.state is READY and warp.ready_at <= now:
                if not lsu_free:
                    k = warp.cursor.peek().kind
                    if k is LOAD or k is STORE:
                        continue
                j += 1
                self._ptr = j if j < n else 0
                return warp
        return None


class PrefetchAwareTwoLevel(TwoLevel):
    """PAS: two-level + leading-warp enqueue priority + eager wake-up.

    Figure 8b: the ready queue is filled with one leading warp per CTA
    *first*, then trailing warps.  We implement that as an enqueue-order
    policy — a warp carrying the (still armed) leading marker enters the
    ready queue or the eligible pool ahead of trailing warps — while the
    issue rotation itself stays the plain two-level round-robin.  The
    marker is disarmed by the SM once the leader has issued its targeted
    loads (its base-discovery job is done), so leaders do not perpetually
    preempt trailing warps.
    """

    name = "pas"

    def _enqueue(self, warp: Warp) -> None:
        if warp.leading:
            if len(self.ready) < self.ready_size:
                lead_end = sum(1 for w in self.ready if w.leading)
                self.ready.insert(lead_end, warp)
            else:
                self.eligible.appendleft(warp)
        else:
            super()._enqueue(warp)

    def on_unblock(self, warp: Warp) -> None:
        """Leading warps re-enter at the head of the eligible pool so
        base-address discovery resumes before trailing progress."""
        if warp.leading:
            self.eligible.appendleft(warp)
        else:
            self.eligible.append(warp)

    def on_prefetch_fill(self, warp: Warp) -> None:
        """Eager wake-up: promote the bound warp into the ready queue,
        displacing a trailing ready warp when the queue is full."""
        if warp.finished or warp.state is WarpState.WAITING_MEM:
            return
        if warp in self.ready or warp not in self.eligible:
            return
        self.eligible.remove(warp)
        if len(self.ready) >= self.ready_size:
            victim_idx = None
            for i in range(len(self.ready) - 1, -1, -1):
                if not self.ready[i].leading and self.ready[i] is not warp:
                    victim_idx = i
                    break
            if victim_idx is None:
                self.eligible.appendleft(warp)
                return
            victim = self.ready.pop(victim_idx)
            self.eligible.appendleft(victim)
        self.ready.append(warp)


class PrefetchAwareLRR(LooseRoundRobin):
    """LRR + leading-warp priority (paper Section V-A's LRR variant).

    While a warp's leading marker is armed it wins the pick over the
    normal rotation, so every CTA's base address is computed as early as
    LRR allows; once disarmed the warp rejoins the plain rotation.
    """

    name = "pas_lrr"

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Issue any armed leading warp first, else plain LRR."""
        for warp in self.warps:
            if warp.leading and self._can_issue(warp, now, lsu_free):
                return warp
        return super().pick(now, lsu_free)


class PrefetchAwareGTO(GreedyThenOldest):
    """GTO + leading-warp priority (paper Section V-A's GTO variant):
    leading warps are greedily scheduled until they compute their CTA's
    base addresses, then trailing warps continue under plain GTO."""

    name = "pas_gto"

    def pick(self, now: int, lsu_free: bool) -> Optional[Warp]:
        """Greedily run leading warps to base discovery, else plain GTO."""
        cur = self._current
        if cur is not None and cur.leading and self._can_issue(cur, now, lsu_free):
            return cur
        leaders = [w for w in self.warps if w.leading]
        for warp in sorted(leaders, key=lambda w: (w.launch_cycle, w.slot)):
            if self._can_issue(warp, now, lsu_free):
                self._current = warp
                return warp
        return super().pick(now, lsu_free)


def make_scheduler(config: GPUConfig) -> Scheduler:
    """Instantiate the scheduler selected by ``config.scheduler``."""
    kind = config.scheduler
    if kind is SchedulerKind.LRR:
        return LooseRoundRobin(config)
    if kind is SchedulerKind.GTO:
        return GreedyThenOldest(config)
    if kind is SchedulerKind.TWO_LEVEL:
        return TwoLevel(config)
    if kind is SchedulerKind.PAS:
        return PrefetchAwareTwoLevel(config)
    if kind is SchedulerKind.PAS_LRR:
        return PrefetchAwareLRR(config)
    if kind is SchedulerKind.PAS_GTO:
        return PrefetchAwareGTO(config)
    raise ValueError(f"unknown scheduler kind {kind!r}")
