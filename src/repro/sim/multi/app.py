"""Concurrent-kernel applications: kernel virtualization + the app model.

A :class:`MultiKernelApp` holds N kernels that share one GPU *at the
same time* (unlike :mod:`repro.sim.application`, which runs kernels
back-to-back).  Because the simulator's per-kernel state is keyed by
static pcs (prefetcher PerCTA/Dist tables) and byte addresses (L1 tags,
MSHRs, DRAM rows), co-resident kernels must never alias each other:
:func:`virtualize_kernel` rebases kernel ``k``'s program pcs by
``k * PC_STRIDE`` and its address space by ``k << KERNEL_ADDR_SHIFT``,
making every pc- or address-keyed table kernel-disjoint by construction
and letting any line address resolve its owning kernel with one shift.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.isa import AddressFn, ComputeOp, LoadOp, LoopOp, Op, StoreOp
from repro.sim.kernel import KernelInfo
from repro.sim.sm import KERNEL_ADDR_SHIFT

#: PC offset between co-resident kernels' programs.  Far larger than any
#: workload's static footprint (4 bytes/slot), far smaller than the
#: address-space stride.
PC_STRIDE = 1 << 20


def _offset_pattern(pattern: AddressFn, offset: int) -> AddressFn:
    def fn(ctx):
        return tuple(a + offset for a in pattern(ctx))

    return fn


def virtualize_kernel(kernel: KernelInfo, kernel_id: int) -> KernelInfo:
    """Rebase ``kernel`` into co-run slot ``kernel_id`` (in place).

    Kernel 0 keeps its native pcs and addresses — a single-kernel run is
    the identity transform, which is what keeps co-run code paths
    bit-compatible with the existing differential baselines.  Later
    kernels get every load/store site's pc shifted by ``PC_STRIDE`` and
    every generated address shifted into a disjoint range.  Only valid
    on freshly built kernels (workload builders return fresh programs
    per :func:`repro.workloads.build` call).
    """
    kernel.kernel_id = kernel_id
    if kernel_id == 0:
        return kernel
    pc_off = kernel_id * PC_STRIDE
    addr_off = kernel_id << KERNEL_ADDR_SHIFT
    prog = kernel.program
    seen: set = set()

    def walk(ops: Sequence[Op]) -> None:
        for op in ops:
            if isinstance(op, (LoadOp, StoreOp)):
                site = op.site
                if id(site) not in seen:
                    seen.add(id(site))
                    site.pc += pc_off
                    site.pattern = _offset_pattern(site.pattern, addr_off)
            elif isinstance(op, LoopOp):
                walk(op.body)
            elif isinstance(op, ComputeOp):
                # Cached ALU Instr objects bake in absolute pcs; drop
                # any cache built before the rebase (defensive — fresh
                # builds have none).
                op.__dict__.pop("_instr_cache", None)

    walk(prog.ops)
    prog._op_pcs = {k: v + pc_off for k, v in prog._op_pcs.items()}
    prog._end_pc += pc_off
    return kernel


class MultiKernelApp:
    """N kernels co-resident on one GPU.

    Exposes the ``name``/``num_ctas`` surface of a single
    :class:`KernelInfo` so the existing GPU plumbing (result collection,
    watchdog snapshots, end-of-run invariants) treats the co-run as one
    combined launch whose counters are additionally sliced per kernel.
    """

    def __init__(self, kernels: Sequence[KernelInfo]):
        if not kernels:
            raise ValueError("co-run needs at least one kernel")
        self.kernels: List[KernelInfo] = [
            virtualize_kernel(k, i) for i, k in enumerate(kernels)
        ]

    @property
    def name(self) -> str:
        return "+".join(k.name for k in self.kernels)

    @property
    def num_ctas(self) -> int:
        return sum(k.num_ctas for k in self.kernels)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self):
        return iter(self.kernels)
