"""Inter-kernel CTA allocation policies for concurrent-kernel runs.

A policy answers one question: when SM ``s`` has room for another CTA at
cycle ``t``, *which kernel's* CTA should it take?  The distributor
(:mod:`repro.sim.multi.distributor`) walks the policy's preference order
and issues the first admissible kernel's next CTA.

Three policies are provided:

``spatial``
    Static SM partitioning.  Each SM is owned by exactly one kernel for
    the whole run (split point from ``MultiConfig.spatial_split``); an
    SM whose kernel has drained simply idles.  This is the classic
    spatial-multitasking baseline — no interference on the SM, full
    interference in the shared L2/DRAM.

``leftover``
    Greedy fill in kernel-id order.  Kernel 0 takes every slot it can;
    later kernels absorb the leftover capacity (free CTA slots and warp
    contexts kernel 0 cannot use).  This mirrors the "leftover" policy
    of concurrent-kernel GPUs where a primary kernel's residual
    occupancy is backfilled by a co-runner.

``preempt``
    CTA-boundary preemptive shortest-remaining-time-first.  An online
    structural runtime predictor (in the spirit of Pai et al.'s model
    of kernel runtime from grid structure) estimates each kernel's
    remaining runtime; every free slot goes to the kernel predicted to
    finish soonest.  Preemption is cooperative at CTA granularity —
    running CTAs are never killed, the kernel holding the SM simply
    stops receiving new slots — which is exactly the CTA-boundary
    preemption the paper's co-run discussion assumes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config import ALLOC_POLICIES, GPUConfig
from repro.errors import ConfigError


class RuntimePredictor:
    """Online per-kernel CTA-runtime estimator.

    Before a kernel has retired any CTA, its estimate is a *structural
    prior*: dynamic instructions per CTA times a configurable
    cycles-per-instruction prior (``MultiConfig.predictor_cpi_prior``).
    Every retired CTA then refines the estimate with an exponential
    moving average over observed CTA durations
    (``MultiConfig.predictor_ema``).  Plain floats are safe for
    engine bit-identity because both engines observe the identical
    sequence of (kid, duration) events and the arithmetic is
    deterministic.
    """

    def __init__(self, kernels, config: GPUConfig):
        mc = config.multi
        self._ema = mc.predictor_ema
        self.observed: List[int] = [0 for _ in kernels]
        self.estimate: List[float] = [
            max(1.0, k.warps_per_cta * k.program.dynamic_instruction_count()
                * mc.predictor_cpi_prior)
            for k in kernels
        ]

    def observe(self, kid: int, duration: int) -> None:
        """Fold one retired CTA's duration into kernel ``kid``'s estimate."""
        if self.observed[kid] == 0:
            self.estimate[kid] = float(max(1, duration))
        else:
            a = self._ema
            self.estimate[kid] = (a * max(1, duration)
                                  + (1.0 - a) * self.estimate[kid])
        self.observed[kid] += 1


class AllocPolicy:
    """Base inter-kernel allocation policy."""

    name = "base"

    def __init__(self, kernels, config: GPUConfig):
        self.kernels = kernels
        self.config = config

    def order(self, sm_id: int, dist) -> Sequence[int]:
        """Kernel ids in preference order for a free slot on ``sm_id``.

        ``dist`` is the :class:`MultiKernelDistributor`, exposing live
        occupancy (``active``, ``finished_ctas``, ``next_cta``).
        """
        raise NotImplementedError

    def observe_cta(self, kid: int, duration: int) -> None:
        """Hook: a CTA of kernel ``kid`` retired after ``duration`` cycles."""


class SpatialPolicy(AllocPolicy):
    """Fixed SM partition: SM ``s`` only ever runs ``self.owner[s]``."""

    name = "spatial"

    def __init__(self, kernels, config: GPUConfig):
        super().__init__(kernels, config)
        k = len(kernels)
        n = config.num_sms
        if n < k:
            raise ConfigError(
                f"spatial allocation needs at least one SM per kernel "
                f"(num_sms={n}, kernels={k})"
            )
        self.owner: List[int] = [0] * n
        if k > 1:
            # Kernel 0 gets round(split * n) SMs (clamped so every
            # kernel keeps at least one); the rest are divided evenly,
            # in SM order, among kernels 1..k-1.
            n0 = int(round(config.multi.spatial_split * n))
            n0 = max(1, min(n - (k - 1), n0))
            rest = n - n0
            for i in range(n0, n):
                self.owner[i] = 1 + (i - n0) * (k - 1) // rest

    def order(self, sm_id: int, dist) -> Sequence[int]:
        return (self.owner[sm_id],)


class LeftoverPolicy(AllocPolicy):
    """Kernel-id priority: later kernels fill slots earlier ones can't."""

    name = "leftover"

    def order(self, sm_id: int, dist) -> Sequence[int]:
        return range(len(self.kernels))


class PreemptPolicy(AllocPolicy):
    """CTA-boundary preemptive SRTF driven by :class:`RuntimePredictor`.

    Predicted remaining runtime of kernel ``k`` is::

        estimate[k] * ctas_left(k) / max(1, active_ctas(k))

    i.e. per-CTA cost times outstanding CTAs, divided by the kernel's
    current CTA-level parallelism.  Free slots are offered to kernels in
    ascending predicted-remaining order with a deterministic kernel-id
    tie-break, so the short kernel preempts the long one's refill stream
    at every CTA boundary and exits quickly — the ANTT win the co-run
    figure demonstrates.
    """

    name = "preempt"

    def __init__(self, kernels, config: GPUConfig):
        super().__init__(kernels, config)
        self.predictor = RuntimePredictor(kernels, config)

    def observe_cta(self, kid: int, duration: int) -> None:
        self.predictor.observe(kid, duration)

    def order(self, sm_id: int, dist) -> Sequence[int]:
        scored: List[Tuple[float, int]] = []
        for kid, kernel in enumerate(self.kernels):
            left = kernel.num_ctas - dist.finished_ctas[kid]
            if left <= 0:
                continue
            active = dist.active_ctas(kid)
            remaining = self.predictor.estimate[kid] * left / max(1, active)
            scored.append((remaining, kid))
        scored.sort()
        return [kid for _, kid in scored]


_POLICIES = {
    SpatialPolicy.name: SpatialPolicy,
    LeftoverPolicy.name: LeftoverPolicy,
    PreemptPolicy.name: PreemptPolicy,
}
assert set(_POLICIES) == set(ALLOC_POLICIES)


def make_policy(name: str, kernels, config: GPUConfig) -> AllocPolicy:
    """Instantiate allocation policy ``name`` (see ``ALLOC_POLICIES``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown allocation policy {name!r}; "
            f"expected one of {', '.join(ALLOC_POLICIES)}"
        ) from None
    return cls(kernels, config)
