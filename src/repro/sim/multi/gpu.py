"""Concurrent-kernel GPU driver.

:class:`MultiGPU` is a :class:`repro.sim.gpu.GPU` whose SMs host CTAs
from several kernels at once.  The run loop, both engines, memory
flush, observability and the always-on guard invariants are inherited
unchanged — the subclass only swaps the CTA distributor for a
policy-driven multi-kernel one, switches every SM into per-kernel
accounting mode, and extends the collected :class:`SimResult` with
per-kernel sub-records that conservation-sum to the global counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.config import GPUConfig
from repro.guard.invariants import InvariantChecker
from repro.guard.watchdog import Watchdog
from repro.mem.subsystem import MemorySubsystem
from repro.obs import build as build_obs
from repro.prefetch.base import NoPrefetcher
from repro.prefetch.stats import PrefetchStats
from repro.sim.gpu import GPU, SimResult
from repro.sim.kernel import KernelInfo
from repro.sim.sm import SM, KernelStats

from .app import MultiKernelApp
from .distributor import MultiKernelDistributor
from .policies import make_policy


class MultiGPU(GPU):
    """Whole-GPU driver for N co-resident kernels.

    ``self.kernel`` is the :class:`MultiKernelApp` itself — it exposes
    the combined ``name`` ("A+B") and summed ``num_ctas`` the inherited
    result collection, watchdog snapshots and CTA-conservation checks
    expect, so none of that plumbing needs multi-kernel special cases.
    """

    def __init__(
        self,
        app: MultiKernelApp,
        config: GPUConfig,
        prefetcher_factory=None,
        faults=None,
    ):
        self.app = app
        self.kernel = app
        self.config = config
        factory = prefetcher_factory or (lambda cfg, sm_id: NoPrefetcher(cfg, sm_id))
        injector = None
        if faults is not None and faults.affects_simulation:
            from repro.guard.faults import MemoryFaultInjector
            injector = MemoryFaultInjector(faults)
        self.subsystem = MemorySubsystem(
            config, config.num_sms, self._on_response, faults=injector
        )
        # Pre-install every kernel's traffic slice so zero-traffic
        # kernels still appear in the per-kernel records.
        self.subsystem.per_kernel = {
            k.kernel_id: [0, 0, 0, 0] for k in app.kernels
        }
        self.watchdog = (Watchdog(config.hang_cycles)
                         if config.hang_cycles else None)
        self.invariants = InvariantChecker(config)
        self.obs = build_obs(config, config.num_sms)
        self.sms: List[SM] = []
        for sm_id in range(config.num_sms):
            pf = factory(config, sm_id)
            self.sms.append(
                SM(sm_id, config, app.kernels[0], pf, self.subsystem,
                   self._on_cta_done, obs=self.obs, multi=True)
            )
        self.policy = make_policy(config.multi.alloc_policy,
                                  app.kernels, config)
        self.distributor = MultiKernelDistributor(app, config, self.policy)
        self.now = 0
        self._launch_initial()

    # ----------------------------------------------------------- launches
    def _launch_initial(self) -> None:
        for sm_id, kid, cta_id in self.distributor.initial_fill():
            self.sms[sm_id].launch_cta(cta_id, self.now,
                                       kernel=self.app.kernels[kid])

    def _on_cta_done(self, sm_id: int, cta, now: int) -> None:
        grants = self.distributor.on_cta_finish(
            sm_id, cta.kernel_id, now - cta.launch_cycle, now)
        for kid, cta_id in grants:
            self.sms[sm_id].launch_cta(cta_id, now,
                                       kernel=self.app.kernels[kid])

    # ------------------------------------------------------------ results
    def _collect(self, completed: bool, cycles: Optional[int] = None) -> SimResult:
        result = super()._collect(completed, cycles)
        dist = self.distributor
        run_cycles = result.cycles
        records: List[Dict[str, Any]] = []
        for kid, kernel in enumerate(self.app.kernels):
            ks = KernelStats()
            pk = PrefetchStats()
            for sm in self.sms:
                if kid in sm.kstats:
                    ks.merge(sm.kstats[kid])
                if kid in sm.pstats_k:
                    pk.merge(sm.pstats_k[kid])
            demand, prefetch, store, responses = self.subsystem.per_kernel[kid]
            finish = dist.finish_cycle[kid]
            rec: Dict[str, Any] = {
                "kernel_id": kid,
                "name": kernel.name,
                "num_ctas": kernel.num_ctas,
                "finish_cycle": finish,
                "finished": finish >= 0,
                # Per-kernel IPC over the kernel's own residency window
                # (launch at 0 to its last CTA's retirement).
                "ipc": (ks.instructions / finish if finish > 0
                        else (ks.instructions / run_cycles if run_cycles
                              else 0.0)),
                "l1_hit_rate": (ks.l1_hits / ks.l1_accesses
                                if ks.l1_accesses else 0.0),
                "coverage": pk.coverage(ks.demand_mem_fetches),
                "accuracy": pk.accuracy(),
                "stall_fraction": (ks.stall_mem_all / ks.active_cycles
                                   if ks.active_cycles else 0.0),
                "mem_demand_requests": demand,
                "mem_prefetch_requests": prefetch,
                "mem_store_requests": store,
                "mem_responses": responses,
                **{k: getattr(ks, k) for k in ks.__dataclass_fields__},
                **{f"pf_{k}": v for k, v in pk.as_dict().items()},
            }
            records.append(rec)
        result.extra["kernels"] = records
        result.extra["multi"] = {
            "alloc_policy": self.policy.name,
            "num_kernels": self.app.num_kernels,
            "grants": len(dist.history),
            "finish_cycles": list(dist.finish_cycle),
            "predictor_estimates": [
                round(e, 6) for e in self.policy.predictor.estimate
            ] if self.policy.name == "preempt" else None,
        }
        return result


def simulate_corun(
    kernels: Sequence[KernelInfo],
    config: GPUConfig,
    prefetcher_factory=None,
    max_cycles: Optional[int] = None,
    monitor=None,
    faults=None,
) -> SimResult:
    """Run ``kernels`` concurrently on one GPU under
    ``config.multi.alloc_policy`` and return the combined
    :class:`SimResult` (per-kernel sub-records in
    ``result.extra["kernels"]``)."""
    app = MultiKernelApp(kernels)
    gpu = MultiGPU(app, config, prefetcher_factory, faults=faults)
    return gpu.run(max_cycles=max_cycles, monitor=monitor)
