"""CTA distribution across SMs for concurrent-kernel runs.

The single-kernel :class:`repro.sim.cta.CTADistributor` tracks one grid;
this distributor tracks N grids at once and delegates the *which kernel*
decision to an :class:`repro.sim.multi.policies.AllocPolicy`.  CTA ids
stay kernel-local (0..num_ctas-1 within each grid) because address
generation threads ``cta_id`` through each kernel's own pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import GPUConfig

from .app import MultiKernelApp
from .policies import AllocPolicy


@dataclass(frozen=True)
class CorunAssignment:
    """One CTA grant: kernel ``kernel_id``'s CTA ``cta_id`` to ``sm_id``."""

    kernel_id: int
    cta_id: int
    sm_id: int
    cycle: int


class MultiKernelDistributor:
    """Issues CTAs from N concurrent grids under an allocation policy.

    Admission of kernel ``k`` on SM ``s`` requires all of:

    * ``k`` still has unissued CTAs;
    * ``s`` has a free CTA slot (total CTAs < ``max_ctas_per_sm``);
    * ``s`` can host another CTA of ``k`` under its per-kernel occupancy
      cap (``min(config.max_ctas_per_sm, kernel.max_ctas_per_sm())``,
      the same resource bound the single-kernel path applies);
    * ``s`` has warp contexts left for a full CTA of ``k``
      (resident warps + ``warps_per_cta`` <= ``max_warps_per_sm``) —
      the binding constraint when co-runners have unequal CTA shapes.
    """

    def __init__(self, app: MultiKernelApp, config: GPUConfig,
                 policy: AllocPolicy):
        self.app = app
        self.config = config
        self.policy = policy
        self.num_sms = config.num_sms
        k = app.num_kernels
        self.next_cta: List[int] = [0] * k
        self.finished_ctas: List[int] = [0] * k
        #: active[sm_id][kid] — CTAs of each kernel resident on each SM.
        self.active: List[List[int]] = [[0] * k for _ in range(self.num_sms)]
        self.resident_warps: List[int] = [0] * self.num_sms
        self.max_ctas_per_kernel: List[int] = [
            min(config.max_ctas_per_sm, kern.max_ctas_per_sm(config))
            for kern in app.kernels
        ]
        #: Cycle each kernel's last CTA retired (-1 while unfinished).
        self.finish_cycle: List[int] = [-1] * k
        self.history: List[CorunAssignment] = []
        self._filled = False

    # ------------------------------------------------------------- state
    @property
    def remaining(self) -> int:
        """Unissued CTAs across all kernels (watchdog/guard surface)."""
        return sum(k.num_ctas - n
                   for k, n in zip(self.app.kernels, self.next_cta))

    def active_ctas(self, kid: int) -> int:
        """CTAs of kernel ``kid`` currently resident across all SMs."""
        return sum(row[kid] for row in self.active)

    def _admissible(self, sm_id: int, kid: int) -> bool:
        kernel = self.app.kernels[kid]
        row = self.active[sm_id]
        return (
            self.next_cta[kid] < kernel.num_ctas
            and sum(row) < self.config.max_ctas_per_sm
            and row[kid] < self.max_ctas_per_kernel[kid]
            and (self.resident_warps[sm_id] + kernel.warps_per_cta
                 <= self.config.max_warps_per_sm)
        )

    # ------------------------------------------------------------ grants
    def _grant(self, sm_id: int, now: int) -> Optional[Tuple[int, int]]:
        """Offer one free slot on ``sm_id``; returns (kid, cta_id) or None."""
        for kid in self.policy.order(sm_id, self):
            if self._admissible(sm_id, kid):
                cta_id = self.next_cta[kid]
                self.next_cta[kid] += 1
                self.active[sm_id][kid] += 1
                self.resident_warps[sm_id] += \
                    self.app.kernels[kid].warps_per_cta
                self.history.append(
                    CorunAssignment(kid, cta_id, sm_id, now))
                return kid, cta_id
        return None

    def initial_fill(self) -> List[Tuple[int, int, int]]:
        """Initial wave at cycle 0: rounds of one grant per SM.

        Mirrors the single-kernel round-robin fill (one CTA per SM per
        round) so no SM races ahead, but each grant is policy-ordered.
        Returns ``(sm_id, kid, cta_id)`` launch tuples.
        """
        if self._filled:
            raise RuntimeError("initial_fill() may only be called once")
        self._filled = True
        launches: List[Tuple[int, int, int]] = []
        progress = True
        while progress:
            progress = False
            for sm_id in range(self.num_sms):
                got = self._grant(sm_id, 0)
                if got is not None:
                    launches.append((sm_id, got[0], got[1]))
                    progress = True
        return launches

    def on_cta_finish(self, sm_id: int, kid: int, duration: int,
                      now: int) -> List[Tuple[int, int]]:
        """Retire one CTA of kernel ``kid`` on ``sm_id``; refill the SM.

        Returns every ``(kid, cta_id)`` newly granted to this SM — one
        retiring CTA of a wide kernel can free room for *several* CTAs
        of a narrower co-runner, so refill loops until the SM is full or
        nothing is admissible.
        """
        self.active[sm_id][kid] -= 1
        self.resident_warps[sm_id] -= self.app.kernels[kid].warps_per_cta
        self.finished_ctas[kid] += 1
        self.policy.observe_cta(kid, duration)
        if self.finished_ctas[kid] == self.app.kernels[kid].num_ctas:
            self.finish_cycle[kid] = now
        grants: List[Tuple[int, int]] = []
        while True:
            got = self._grant(sm_id, now)
            if got is None:
                return grants
            grants.append(got)
