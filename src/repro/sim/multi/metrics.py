"""Multiprogramming metrics for concurrent-kernel runs.

ANTT and STP are the standard co-run fairness/throughput pair
(Eyerman & Eeckhout):

* **ANTT** (average normalized turnaround time) — ``mean(T_co / T_solo)``
  over kernels; 1.0 is no slowdown, lower is better.
* **STP** (system throughput) — ``sum(T_solo / T_co)``; equals the
  number of kernels under perfect scaling, higher is better.

Both need each kernel's *solo* runtime, which only the caller (runner /
analysis layer) has — the simulator reports per-kernel co-run finish
cycles and these helpers combine them.
"""

from __future__ import annotations

from typing import Dict, Sequence


def antt_stp(co_cycles: Sequence[int],
             solo_cycles: Sequence[int]) -> Dict[str, float]:
    """Compute ANTT and STP from per-kernel co-run and solo runtimes."""
    if len(co_cycles) != len(solo_cycles) or not co_cycles:
        raise ValueError("need one (co, solo) runtime pair per kernel")
    ratios = []
    for co, solo in zip(co_cycles, solo_cycles):
        if co <= 0 or solo <= 0:
            raise ValueError(f"runtimes must be positive (co={co}, solo={solo})")
        ratios.append(co / solo)
    antt = sum(ratios) / len(ratios)
    stp = sum(1.0 / r for r in ratios)
    return {"antt": antt, "stp": stp}
