"""Concurrent-kernel execution subsystem.

Runs N kernels *simultaneously* on one simulated GPU (contrast with
:mod:`repro.sim.application`, which runs kernels back-to-back with a
persistent memory hierarchy).  CTA slots are allocated between kernels
by a pluggable policy — ``spatial`` (fixed SM partition), ``leftover``
(priority fill) or ``preempt`` (CTA-boundary preemptive SRTF driven by
an online runtime predictor) — and every SM/memory counter is sliced
per kernel so interference can be measured exactly.
"""

from .app import PC_STRIDE, MultiKernelApp, virtualize_kernel
from .distributor import CorunAssignment, MultiKernelDistributor
from .gpu import MultiGPU, simulate_corun
from .metrics import antt_stp
from .policies import (
    AllocPolicy,
    LeftoverPolicy,
    PreemptPolicy,
    RuntimePredictor,
    SpatialPolicy,
    make_policy,
)

__all__ = [
    "PC_STRIDE",
    "MultiKernelApp",
    "virtualize_kernel",
    "CorunAssignment",
    "MultiKernelDistributor",
    "MultiGPU",
    "simulate_corun",
    "antt_stp",
    "AllocPolicy",
    "SpatialPolicy",
    "LeftoverPolicy",
    "PreemptPolicy",
    "RuntimePredictor",
    "make_policy",
]
