"""Warp instruction-stream model.

A kernel supplies each warp with a :class:`WarpProgram` — a small tree of
ops (straight-line compute, loads, stores, and counted loops).  The SM
walks the program through a :class:`WarpCursor`, which yields one
:class:`Instr` per issue slot, mirroring how GPGPU-Sim replays a warp's
dynamic instruction stream.

Loads reference a :class:`LoadSite` (one static load instruction,
identified by PC).  The site owns an *address pattern* — a callable that
maps an :class:`AddressContext` (kernel, CTA id, warp-within-CTA, dynamic
execution count of the site) to the byte addresses touched by the warp's
32 lanes after coalescing.  This is the load-address function Θ(CTA) +
tid·C3 of the paper's Section IV, made explicit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple


class InstrKind(enum.Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    EXIT = "exit"


@dataclass(frozen=True)
class AddressContext:
    """Everything an address pattern may depend on.

    ``iteration`` counts dynamic executions of the load site by this warp
    (0 for the first execution), which is what intra-warp stride
    prefetchers key on.  ``cta_id`` is the linear CTA index in the grid;
    ``warp_in_cta`` the warp's position inside its CTA.
    """

    cta_id: int
    warp_in_cta: int
    iteration: int
    warps_per_cta: int
    num_ctas: int


AddressFn = Callable[[AddressContext], Sequence[int]]


@dataclass
class LoadSite:
    """A static global-load instruction.

    ``pattern`` returns the per-warp byte addresses (one per coalesced
    memory request, at most 32).  ``indirect`` marks data-dependent
    addressing (graph edges, hash probes); the paper's CAP excludes such
    loads from prefetching via backward source-register tracing, which we
    substitute with this static flag.
    """

    pc: int
    pattern: AddressFn
    indirect: bool = False
    name: str = ""

    def addresses(self, ctx: AddressContext) -> Tuple[int, ...]:
        addrs = tuple(int(a) for a in self.pattern(ctx))
        if not addrs:
            raise ValueError(f"load site pc={self.pc:#x} produced no addresses")
        if len(addrs) > 32:
            raise ValueError(
                f"load site pc={self.pc:#x} produced {len(addrs)} requests; "
                "a warp can issue at most 32"
            )
        for a in addrs:
            if a < 0:
                raise ValueError(f"negative address {a} from pc={self.pc:#x}")
        return addrs


class Op:
    """Base class for program ops (see subclasses)."""

    __slots__ = ()


@dataclass
class ComputeOp(Op):
    """``count`` back-to-back dependent ALU instructions.

    Each instruction occupies one issue slot and makes the warp ready
    again ``latency`` cycles later (result forwarding between dependent
    ALU ops).
    """

    count: int
    latency: int = 4

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("ComputeOp.count must be >= 1")
        if self.latency < 1:
            raise ValueError("ComputeOp.latency must be >= 1")


@dataclass
class LoadOp(Op):
    """A global load; the warp blocks until data returns.

    ``use_distance`` models independent instructions between the load and
    its first use: the warp may continue issuing that many subsequent
    instructions before stalling on the outstanding load.  The common GPU
    case (load feeding the next instruction) is distance 0.
    """

    site: LoadSite
    use_distance: int = 0


@dataclass
class StoreOp(Op):
    """A global store — fire-and-forget traffic, never blocks the warp."""

    site: LoadSite


@dataclass
class LoopOp(Op):
    """A counted loop around a body of ops."""

    trips: int
    body: List[Op]

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise ValueError("LoopOp.trips must be >= 1")
        if not self.body:
            raise ValueError("LoopOp.body must not be empty")


@dataclass(frozen=True)
class Instr:
    """One dynamic instruction as seen by the SM issue stage."""

    kind: InstrKind
    pc: int
    latency: int = 1
    site: Optional[LoadSite] = None
    iteration: int = 0
    use_distance: int = 0


@dataclass
class WarpProgram:
    """A warp's static program plus derived metadata."""

    ops: List[Op]
    name: str = ""

    def __post_init__(self) -> None:
        self._assign_pcs()

    def _assign_pcs(self) -> None:
        """Give every op a stable PC (4 bytes per instruction slot)."""
        pc = [0]
        self._op_pcs = {}

        def walk(ops: Sequence[Op]) -> None:
            for op in ops:
                self._op_pcs[id(op)] = pc[0]
                if isinstance(op, ComputeOp):
                    pc[0] += 4 * op.count
                elif isinstance(op, (LoadOp, StoreOp)):
                    if op.site.pc == 0:
                        op.site.pc = pc[0]
                    pc[0] += 4
                elif isinstance(op, LoopOp):
                    pc[0] += 4
                    walk(op.body)
                    pc[0] += 4
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown op {op!r}")

        walk(self.ops)
        self._end_pc = pc[0]

    def load_sites(self) -> List[LoadSite]:
        """All static load sites, in program order."""
        sites: List[LoadSite] = []

        def walk(ops: Sequence[Op]) -> None:
            for op in ops:
                if isinstance(op, LoadOp):
                    sites.append(op.site)
                elif isinstance(op, LoopOp):
                    walk(op.body)

        walk(self.ops)
        return sites

    def static_instruction_count(self) -> int:
        """Static instruction slots (compute runs expanded)."""
        total = [0]

        def walk(ops: Sequence[Op]) -> None:
            for op in ops:
                if isinstance(op, ComputeOp):
                    total[0] += op.count
                elif isinstance(op, (LoadOp, StoreOp)):
                    total[0] += 1
                elif isinstance(op, LoopOp):
                    total[0] += 2
                    walk(op.body)

        walk(self.ops)
        return total[0]

    def dynamic_instruction_count(self) -> int:
        """Dynamic instructions one warp executes (loops unrolled)."""
        def walk(ops: Sequence[Op]) -> int:
            n = 0
            for op in ops:
                if isinstance(op, ComputeOp):
                    n += op.count
                elif isinstance(op, (LoadOp, StoreOp)):
                    n += 1
                elif isinstance(op, LoopOp):
                    n += op.trips * walk(op.body)
            return n

        return walk(self.ops)

    def cursor(self) -> "WarpCursor":
        return WarpCursor(self)


_EXIT = Instr(kind=InstrKind.EXIT, pc=-1)


class WarpCursor:
    """Walks a :class:`WarpProgram`, yielding one :class:`Instr` per issue.

    The cursor tracks per-site dynamic execution counts so address
    patterns can see the loop iteration index, exactly the information an
    intra-warp stride prefetcher trains on.
    """

    __slots__ = ("program", "_stack", "_compute_left", "_site_iters", "_done",
                 "issued", "_peeked")

    def __init__(self, program: WarpProgram):
        self.program = program
        # stack frames: [ops, index, remaining_trips]
        self._stack: List[list] = [[program.ops, 0, 1]]
        self._compute_left = 0
        self._site_iters: dict = {}
        self._done = False
        self.issued = 0
        self._peeked: Optional[Instr] = None

    @property
    def done(self) -> bool:
        return self._done

    def site_iteration(self, site: LoadSite) -> int:
        """Dynamic executions of ``site`` so far by this warp."""
        return self._site_iters.get(site.pc, 0)

    def peek(self) -> Instr:
        """Look at the next dynamic instruction without consuming it."""
        if self._done:
            raise RuntimeError("cursor already exhausted")
        if self._peeked is None:
            self._peeked = self._produce()
        return self._peeked

    def next_instr(self) -> Instr:
        """Consume and return the next dynamic instruction.

        Returns an EXIT instruction exactly once when the program ends;
        calling again afterwards raises ``RuntimeError``.
        """
        if self._done:
            raise RuntimeError("cursor already exhausted")
        if self._peeked is not None:
            instr = self._peeked
            self._peeked = None
        else:
            instr = self._produce()
        if instr.kind is InstrKind.EXIT:
            self._done = True
        else:
            self.issued += 1
        return instr

    def consume_alu(self, count: int) -> None:
        """Batch-consume ``count`` pending ALU instructions.

        Equivalent to ``count`` consecutive :meth:`next_instr` calls, on
        the caller's guarantee (checked by the event engine,
        :mod:`repro.sim.fastcore`) that the memoized peek plus the
        current :class:`ComputeOp` run hold at least that many ALU
        instructions.  Touches exactly the state :meth:`_produce` would:
        the peek slot, ``issued``, ``_compute_left`` and — when the run
        ends — the owning frame's index.
        """
        if self._peeked is not None:
            self._peeked = None
            self.issued += 1
            count -= 1
        if count:
            self._compute_left -= count
            self.issued += count
            if self._compute_left == 0:
                self._stack[-1][1] += 1

    def _produce(self) -> Instr:
        while True:
            frame = self._stack[-1]
            ops, idx, _trips = frame
            if idx >= len(ops):
                if len(self._stack) == 1:
                    return _EXIT
                frame[2] -= 1
                if frame[2] > 0:
                    frame[1] = 0
                    continue
                self._stack.pop()
                self._stack[-1][1] += 1
                continue
            op = ops[idx]
            if isinstance(op, ComputeOp):
                if self._compute_left == 0:
                    self._compute_left = op.count
                # ALU Instr objects are immutable and identical for every
                # warp: build them once per op and share (hot path).
                cache = getattr(op, "_instr_cache", None)
                if cache is None:
                    base_pc = self.program._op_pcs[id(op)]
                    cache = [
                        Instr(kind=InstrKind.ALU, pc=base_pc + 4 * i,
                              latency=op.latency)
                        for i in range(op.count)
                    ]
                    op._instr_cache = cache
                instr = cache[op.count - self._compute_left]
                self._compute_left -= 1
                if self._compute_left == 0:
                    frame[1] += 1
                return instr
            if isinstance(op, LoadOp):
                it = self._site_iters.get(op.site.pc, 0)
                self._site_iters[op.site.pc] = it + 1
                frame[1] += 1
                return Instr(
                    kind=InstrKind.LOAD,
                    pc=op.site.pc,
                    site=op.site,
                    iteration=it,
                    use_distance=op.use_distance,
                )
            if isinstance(op, StoreOp):
                it = self._site_iters.get(op.site.pc, 0)
                self._site_iters[op.site.pc] = it + 1
                frame[1] += 1
                return Instr(
                    kind=InstrKind.STORE,
                    pc=op.site.pc,
                    site=op.site,
                    iteration=it,
                )
            if isinstance(op, LoopOp):
                self._stack.append([op.body, 0, op.trips])
                continue
            raise TypeError(f"unknown op {op!r}")  # pragma: no cover


def strided_pattern(
    base: int,
    warp_stride: int,
    *,
    lines_per_access: int = 1,
    line_bytes: int = 128,
    iter_stride: int = 0,
    cta_base_fn: Optional[Callable[[int], int]] = None,
) -> AddressFn:
    """The canonical GPU address function of Section IV.

    ``addr = Θ(CTA) + warp_in_cta · warp_stride + iteration · iter_stride``
    with ``lines_per_access`` consecutive cache-line requests per warp
    (the coalescer output for 4/8/16-byte elements).  When ``cta_base_fn``
    is given it supplies Θ(CTA); otherwise CTAs are laid out contiguously
    (Θ = base + cta · warps_per_cta · warp_stride).
    """

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        if cta_base_fn is not None:
            theta = base + cta_base_fn(ctx.cta_id)
        else:
            theta = base + ctx.cta_id * ctx.warps_per_cta * warp_stride
        start = theta + ctx.warp_in_cta * warp_stride + ctx.iteration * iter_stride
        return tuple(start + i * line_bytes for i in range(lines_per_access))

    return fn
