"""Kernel description: grid geometry, per-CTA resources, warp programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import CTAResources, GPUConfig, occupancy
from repro.sim.isa import WarpProgram


@dataclass
class KernelInfo:
    """A launched kernel.

    All warps of a kernel share one static :class:`WarpProgram` (the usual
    CUDA situation: one code path, addresses parameterized by CTA/thread
    ids).  ``grid_dim`` is carried for kernels whose Θ(CTA) depends on 2D
    CTA coordinates (e.g. LPS); the simulator itself only uses the linear
    CTA count.

    ``resources`` feeds the Section II-B occupancy calculation that caps
    concurrent CTAs per SM.
    """

    name: str
    num_ctas: int
    warps_per_cta: int
    program: WarpProgram
    grid_dim: Tuple[int, int] = (0, 0)
    resources: Optional[CTAResources] = None
    irregular: bool = False
    #: Position in a concurrent-kernel launch (0 for single-kernel runs).
    #: Set by :func:`repro.sim.multi.virtualize_kernel`, which also
    #: rebases the program's pcs and address space so per-kernel state
    #: never aliases across co-runners.
    kernel_id: int = 0

    def __post_init__(self) -> None:
        if self.num_ctas < 1:
            raise ValueError("kernel needs at least one CTA")
        if self.warps_per_cta < 1:
            raise ValueError("CTA needs at least one warp")
        if self.grid_dim == (0, 0):
            self.grid_dim = (self.num_ctas, 1)
        if self.grid_dim[0] * self.grid_dim[1] != self.num_ctas:
            raise ValueError("grid_dim does not match num_ctas")
        if self.resources is None:
            self.resources = CTAResources(threads=self.warps_per_cta * 32)

    @property
    def total_warps(self) -> int:
        return self.num_ctas * self.warps_per_cta

    def cta_coord(self, cta_id: int) -> Tuple[int, int]:
        """2D CTA coordinate for a linear CTA id (row-major)."""
        if not 0 <= cta_id < self.num_ctas:
            raise IndexError(f"cta_id {cta_id} out of range")
        gx = self.grid_dim[0]
        return (cta_id % gx, cta_id // gx)

    def max_ctas_per_sm(self, config: GPUConfig) -> int:
        """Concurrent-CTA limit for this kernel under ``config``."""
        limit = occupancy(config, self.resources)
        if limit == 0:
            raise ValueError(
                f"kernel {self.name!r} CTA does not fit on an SM under config"
            )
        by_warps = config.max_warps_per_sm // self.warps_per_cta
        if by_warps == 0:
            raise ValueError(
                f"kernel {self.name!r} CTA has more warps than an SM supports"
            )
        return min(limit, by_warps)

    def dynamic_instructions(self) -> int:
        """Total dynamic instructions across all warps."""
        return self.total_warps * self.program.dynamic_instruction_count()
