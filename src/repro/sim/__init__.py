"""Simplified cycle-level SIMT GPU simulator substrate.

This package models the pieces of GPGPU-Sim that the paper's mechanisms
exercise: warp instruction streams (:mod:`repro.sim.isa`), kernel/CTA
geometry (:mod:`repro.sim.kernel`), demand-driven CTA distribution
(:mod:`repro.sim.cta`), warp schedulers (:mod:`repro.sim.sched`), memory
coalescing (:mod:`repro.sim.coalesce`), the SM issue pipeline
(:mod:`repro.sim.sm`) and the top-level GPU (:mod:`repro.sim.gpu`).
"""

from repro.sim.isa import (
    AddressContext,
    ComputeOp,
    Instr,
    InstrKind,
    LoadOp,
    LoadSite,
    LoopOp,
    StoreOp,
    WarpProgram,
)
from repro.sim.kernel import KernelInfo
from repro.sim.cta import CTADistributor
from repro.sim.gpu import GPU, SimResult, simulate
from repro.sim.application import ApplicationResult, simulate_application
from repro.sim.trace import LoadRecord, LoadTracer, TraceResult, trace_kernel

__all__ = [
    "AddressContext",
    "ComputeOp",
    "Instr",
    "InstrKind",
    "LoadOp",
    "LoadSite",
    "LoopOp",
    "StoreOp",
    "WarpProgram",
    "KernelInfo",
    "CTADistributor",
    "GPU",
    "SimResult",
    "simulate",
    "ApplicationResult",
    "simulate_application",
    "LoadRecord",
    "LoadTracer",
    "TraceResult",
    "trace_kernel",
]
