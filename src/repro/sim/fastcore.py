"""Event-driven fast core: the ``engine="event"`` simulator main loop.

The reference loop (:meth:`repro.sim.gpu.GPU.run`, ``engine="cycle"``)
advances every component every cycle.  Most cycles do nothing but accrue
a stall counter: warps wait on memory, DRAM waits on its completion
heap, the interconnect pipes wait on their latency.  This module skips
those cycles in batches while staying *bit-identical* to the reference —
the differential suite (``tests/sim/test_differential_engines.py``)
pins every counter, series and snapshot across both engines.

Design (docs/architecture.md has the full contract):

* **Next-event hooks.**  Each component exposes ``next_event_cycle(now)``
  — the earliest cycle at which it would do more than batch-accruable
  accounting.  ``SM.next_event_cycle``, ``Scheduler.next_issue_cycle``,
  ``MemorySubsystem.next_event_cycle`` and
  ``DramChannel.next_event_cycle`` are conservative lower bounds: they
  may fire early (wasting a check) but never late (missing work).

* **Response bound.**  SM state can change under an SM span only via a
  memory response.  :meth:`MemorySubsystem.earliest_delivery_cycle`
  lower-bounds the next delivery to *any* SM; a response delivered in
  the subsystem phase of cycle ``c`` is visible to SM phases from
  ``c + 1``, so every SM span is capped at ``bound + 1``.

* **Eager spans.**  SM issue spans accrue their counters up front and
  set ``sm._skip_until``; external events (responses, CTA launches)
  reset it, and because spans never outrun the response bound the
  accrued prefix never overlaps the re-dispatched suffix.

* **Lazy stall spans.**  Pure stall spans defer their accounting: the
  span records only its start (``sm._span_from``) and settles the
  elapsed stall cycles via :meth:`SM._settle_span` at the first
  subsequent touch point — re-dispatch (settle to ``now``), a memory
  response (settle to ``now + 1``, since the reference loop charges the
  arrival cycle as stalled), or a hook/exit boundary (settle to
  ``now``).  This keeps a span interrupted mid-flight from ever having
  over-accrued.

* **Hard spans.**  An issue span whose pre-executed picks provably
  cannot be altered by a memory response — no replay in flight, the
  two-level ready queue full (a response can only append to the
  eligible pool), eager wake-up off, no queued prefetch work — is
  marked ``_span_hard`` and allowed to run to the hook boundary instead
  of the response bound; responses do not reset its ``_skip_until``.
  Lazy stall spans are never hard: a response settles them immediately.

* **Hook boundaries.**  Spans and clock jumps never cross the next
  monitor / obs-window / watchdog boundary, so samples, window flushes
  and hang checks fire at exactly the reference cycles with exactly the
  reference counter state.  This is also what anchors the watchdog to
  *simulated* cycles rather than loop iterations.

* **Issue automaton.**  For the two-level schedulers (``two_level``,
  ``pas``) runs of back-to-back ALU issues are replayed in local arrays
  mirroring the ready-queue rotation, with a closed-form jump over
  steady-state full rotations; cursors are advanced in bulk via
  :meth:`repro.sim.isa.WarpCursor.consume_alu`.  The span stops before
  the first cycle that would pick a load/store/EXIT, which then runs
  through the reference ``SM.cycle`` path.
"""

from __future__ import annotations

from repro.sim.isa import InstrKind
from repro.sim.sched import TwoLevel

#: Sentinel "never" cycle shared by every next-event hook.
NEVER = 1 << 62


def _next_hook(t: int, limit: int, interval: int, obs_interval: int,
               wd_interval: int) -> int:
    """First cycle after ``t`` at which any periodic hook (monitor
    sample, obs window flush, watchdog check) fires, capped at
    ``limit``.  Spans and clock jumps never cross this boundary."""
    nh = limit
    if interval:
        b = t - t % interval + interval
        if b < nh:
            nh = b
    if obs_interval:
        b = t - t % obs_interval + obs_interval
        if b < nh:
            nh = b
    if wd_interval:
        b = t - t % wd_interval + wd_interval
        if b < nh:
            nh = b
    return nh


def _accrue_stall(sm, k: int) -> None:
    """Batch-accrue ``k`` pure stall cycles (issue returned nothing).

    Mirrors ``SM._account_stall`` + the per-cycle ``active_cycles``
    increment; the waiting/unfinished counts are constant over a span
    because blocks, finishes and launches all stop spans."""
    stats = sm.stats
    stats.active_cycles += k
    if sm.waiting_mem_warps >= sm.unfinished_warps:
        stats.stall_mem_all += k
    elif sm.waiting_mem_warps > 0:
        stats.stall_mem_partial += k
    else:
        stats.stall_other += k
    if sm._multi:
        sm._kernel_stall_cycles(k)


def _replay_wedged(sm, rp) -> bool:
    """True when the load replay head provably cannot make progress —
    and, since the blocking condition can only be lifted by a memory
    response, will not progress on any cycle before the response bound.

    Mirrors the replay-failure branches of ``SM._process_demand_lines``
    (the caller has already checked the miss queue is empty)."""
    head = rp.remaining[0]
    if sm.l1.probe(head) is not None:
        return False
    meta = sm._inflight_prefetch.get(head)
    mshr = sm.l1.mshr
    if meta is not None:
        return len(meta.waiters) >= mshr.merge_limit
    if mshr.pending(head):
        return not mshr.can_merge(head)
    return mshr.full or sm.miss_queue_depth == 0


def _issue_span(sm, now: int, end: int, stall_cap: int, lsu_busy: bool) -> int:
    """Batch-execute two-level issue cycles ``[now, t)``; returns ``t``.

    Replays the exact ready-queue rotation of ``TwoLevel.pick`` in local
    arrays, issuing ALU instructions and accruing stall cycles.  Stops
    (returning early) before the first cycle whose pick would be a
    load/store/EXIT — or, with ``lsu_busy`` (an active replay holds the
    LSU), before an EXIT pick, while load/store-next warps are skipped
    in the rotation exactly as ``Scheduler._can_issue`` does.  Returns
    ``now`` unchanged when nothing could be batched (the caller then
    runs the reference ``SM.cycle``).

    ``stall_cap`` is the response bound: *stall* cycles beyond it could
    be misclassified by a response that changes the warp counts, so a
    stall needed at ``t >= stall_cap`` ends the span.  Issue cycles are
    response-independent under the hard-span preconditions (see
    ``_dispatch``) and may run to ``end`` past the cap."""
    sched = sm.scheduler
    sched._refill()
    ready = sched.ready
    n = len(ready)
    if n == 0:
        _accrue_stall(sm, end - now)
        return end
    # Fast prelude: resolve the pick at `now` without building the slot
    # arrays.  Most calls bail here — either the pick is a load/store
    # (per-cycle path) or nothing is pickable (pure stall span).
    ptr0 = sched._ptr % n
    ALU = InstrKind.ALU
    LOAD = InstrKind.LOAD
    STORE = InstrKind.STORE
    first = -1
    for i in range(n):
        j = ptr0 + i
        if j >= n:
            j -= n
        w = ready[j]
        if w.ready_at > now:
            continue
        if lsu_busy:
            c = w.cursor
            ins = c._peeked
            if ins is None:
                ins = c.peek()
            k = ins.kind
            if k is LOAD or k is STORE:
                continue  # wants the busy LSU: rotation skips it
        first = j
        break
    if first < 0:
        # Pure stall at `now`: jump to the earliest pickable ripen time
        # and let the next dispatch re-resolve from there.
        nxt = end if end < stall_cap else stall_cap
        for w in ready:
            rw = w.ready_at
            if rw <= now or rw >= nxt:
                continue
            if lsu_busy:
                c = w.cursor
                ins = c._peeked
                if ins is None:
                    ins = c.peek()
                k = ins.kind
                if k is LOAD or k is STORE:
                    continue
            nxt = rw
        _accrue_stall(sm, nxt - now)
        return nxt
    c = ready[first].cursor
    ins = c._peeked
    if ins is None:
        ins = c.peek()
    if ins.kind is not ALU:
        return now  # load/store/EXIT pick: reference SM.cycle runs it
    ra = [0] * n
    alu = [0] * n
    lat = [0] * n
    kind = [0] * n  # 1 = ALU-next, 0 = load/store-next, 2 = EXIT-next
    cnt = [0] * n   # cursor consumes pending since the last flush
    tot = [0] * n   # total issues this span (stats writeback)
    for j in range(n):
        w = ready[j]
        if w.pending_pieces > 0:
            # A deferred warp (use_distance) charges its budget on every
            # issue and may block mid-run: per-cycle path only.
            return now
        ra[j] = w.ready_at
        c = w.cursor
        ins = c._peeked
        if ins is None:
            ins = c.peek()
        k = ins.kind
        if k is InstrKind.ALU:
            kind[j] = 1
            alu[j] = 1 + c._compute_left
            lat[j] = ins.latency
        elif k is InstrKind.EXIT:
            kind[j] = 2

    t = now
    issued = 0
    stalls = 0
    ptr = sched._ptr % n
    p0 = ptr
    while t < end:
        pick = -1
        for i in range(n):
            j = ptr + i
            if j >= n:
                j -= n
            if ra[j] > t:
                continue
            if kind[j] == 0 and lsu_busy:
                continue  # wants the busy LSU: rotation skips it
            pick = j
            break
        if pick < 0:
            # Stall: jump to the earliest cycle a pickable slot ripens.
            # Stalls are classification-safe only below the response
            # bound, so they never cross `stall_cap`.
            lim = end if end < stall_cap else stall_cap
            if t >= lim:
                break
            nxt = NEVER
            for j in range(n):
                if lsu_busy and kind[j] == 0:
                    continue
                rj = ra[j]
                if rj > t and rj < nxt:
                    nxt = rj
            if nxt >= lim:
                stalls += lim - t
                t = lim
                break
            stalls += nxt - t
            t = nxt
            continue
        if kind[pick] != 1:
            break  # load/store/EXIT pick: stop before this cycle
        alu[pick] -= 1
        cnt[pick] += 1
        tot[pick] += 1
        ra[pick] = t + lat[pick]
        issued += 1
        t += 1
        ptr = pick + 1
        if ptr >= n:
            ptr = 0
        if alu[pick] == 0:
            c = ready[pick].cursor
            c.consume_alu(cnt[pick])
            cnt[pick] = 0
            ins = c.peek()
            k = ins.kind
            if k is InstrKind.ALU:
                alu[pick] = 1 + c._compute_left
                lat[pick] = ins.latency
            elif k is InstrKind.EXIT:
                kind[pick] = 2
            else:
                kind[pick] = 0
        elif ptr == p0:
            # Steady state: ptr wrapped with ALU work left.  If every
            # slot is ALU-next, already ripe in rotation order, and its
            # result returns within one rotation (latency <= n), each
            # rotation issues one instruction per slot — jump whole
            # rotations in closed form.
            rot = (end - t) // n
            if rot >= 1:
                for i in range(n):
                    s = p0 + i
                    if s >= n:
                        s -= n
                    if kind[s] != 1 or lat[s] > n or ra[s] > t + i:
                        rot = 0
                        break
                    if alu[s] < rot:
                        rot = alu[s]
            if rot >= 1:
                for i in range(n):
                    s = p0 + i
                    if s >= n:
                        s -= n
                    alu[s] -= rot
                    cnt[s] += rot
                    tot[s] += rot
                    ra[s] = t + (rot - 1) * n + i + lat[s]
                issued += rot * n
                t += rot * n
                for s in range(n):
                    if alu[s] == 0:
                        c = ready[s].cursor
                        c.consume_alu(cnt[s])
                        cnt[s] = 0
                        ins = c.peek()
                        k = ins.kind
                        if k is InstrKind.ALU:
                            alu[s] = 1 + c._compute_left
                            lat[s] = ins.latency
                        elif k is InstrKind.EXIT:
                            kind[s] = 2
                        else:
                            kind[s] = 0

    if stalls:
        _accrue_stall(sm, stalls)
    if issued:
        sched._ptr = ptr
        total = 0
        per_kernel = {} if sm._multi else None
        for j in range(n):
            if cnt[j]:
                ready[j].cursor.consume_alu(cnt[j])
            tj = tot[j]
            if tj:
                w = ready[j]
                w.instructions_issued += tj
                w.ready_at = ra[j]
                total += tj
                if per_kernel is not None:
                    kid = w.kernel_id
                    per_kernel[kid] = per_kernel.get(kid, 0) + tj
        stats = sm.stats
        stats.instructions += total
        stats.issue_cycles += issued
        stats.active_cycles += issued
        if per_kernel is not None:
            # Each issue cycle belongs to exactly one kernel; from every
            # co-resident kernel's perspective the same cycle is a stall
            # (warp counts are constant over an ALU-only span, so the
            # per-kernel classification is too).
            for kid, unfin in sm.k_unfinished.items():
                if unfin <= 0:
                    continue
                ks = sm.kstats[kid]
                own = per_kernel.get(kid, 0)
                ks.active_cycles += issued
                ks.issue_cycles += own
                ks.instructions += own
                other = issued - own
                if other:
                    kw = sm.k_waiting.get(kid, 0)
                    if kw >= unfin:
                        ks.stall_mem_all += other
                    elif kw > 0:
                        ks.stall_mem_partial += other
                    else:
                        ks.stall_other += other
    return t


def _dispatch(sm, now: int, hook_at: int, sub, cap_box) -> None:
    """Advance one SM from cycle ``now``: run the reference ``cycle``
    when per-cycle work is pending, otherwise open the longest provably
    safe span and record it in ``sm._skip_until``.

    ``cap_box`` is a one-slot cache of the iteration's response bound
    (``earliest_delivery_cycle + 1``), computed lazily so iterations
    whose SMs never need it don't pay for it."""
    sm._span_hard = False
    if sm._span_from >= 0:
        sm._settle_span(now)
    if sm.unfinished_warps == 0:
        if sm.miss_queue or sm.store_queue or sm.prefetch_miss_queue:
            sm.cycle(now)
        else:
            sm._skip_until = NEVER
        return
    hh = sm._hit_heap
    if (
        sm.miss_queue
        or sm.store_queue
        or sm.prefetch_miss_queue
        or (hh and hh[0][0] <= now)
        or (
            sm.prefetch_queue
            and sm.unused_prefetched_resident < sm._prefetch_resident_limit
        )
    ):
        sm.cycle(now)
        return
    rp = sm.replay
    if rp is not None and (rp.is_store or not _replay_wedged(sm, rp)):
        sm.cycle(now)
        return
    # End bound for *lazy* spans: hooks and the SM's own future work
    # (ripe hits, serviceable prefetches) — but not the response bound.
    lazy_end = hook_at
    if hh and hh[0][0] < lazy_end:
        lazy_end = hh[0][0]
    p = sm.prefetcher.next_event_cycle(now)
    if p < lazy_end:
        lazy_end = p
    nxt = sm.scheduler.next_issue_cycle()
    if nxt > now:
        # No warp can issue before `nxt` absent an external event: open
        # a lazy stall span with deferred accounting.  No response cap
        # is needed — an early response settles the shorter prefix
        # (SM._settle_span) before mutating any warp.
        if nxt < lazy_end:
            lazy_end = nxt
        if lazy_end <= now:
            sm.cycle(now)
            return
        sm._span_from = now
        sm._span_replay = rp is not None
        sm._skip_until = lazy_end
        return
    # Something is pickable this cycle.  Two-level schedulers batch ALU
    # issue runs eagerly under the response bound; flat schedulers
    # (lrr/gto variants) run issue cycles through the reference path.
    sched = sm.scheduler
    if not isinstance(sched, TwoLevel):
        sm.cycle(now)
        return
    cap = cap_box[0]
    if cap == 0:
        cap = cap_box[0] = sub.earliest_delivery_cycle(now) + 1
    # Hard (response-tolerant) span preconditions: with the ready queue
    # full, a response or launch can only append to the eligible pool
    # (_refill is a no-op), eager wake-up is off so nothing displaces a
    # ready warp, and no gated prefetch work can become serviceable.
    # In-span picks are then provably response-independent and may run
    # to the hook boundary; only stalls stay under the response bound.
    # Multi-kernel runs additionally classify each issue cycle from
    # every co-resident kernel's perspective using that kernel's live
    # waiting count — a response landing mid-span changes it — so they
    # keep all spans under the response bound.
    hard = (
        rp is None
        and not sm._multi
        and sm._hard_span_ok
        and not sm.prefetch_queue
        and len(sched.ready) == sched.ready_size
    )
    if hard:
        end = lazy_end
    else:
        end = lazy_end if lazy_end < cap else cap
    if end <= now:
        sm.cycle(now)
        return
    t = _issue_span(sm, now, end, cap, rp is not None)
    if t == now:
        sm.cycle(now)
        return
    if rp is not None:
        # Wedged load replay: every skipped cycle retried the head,
        # failed, and charged the replay + L1 miss counters.
        k = t - now
        sm.stats.replay_cycles += k
        l1 = sm.l1
        l1._tick += k
        l1.accesses += k
        l1.misses += k
        if sm._multi:
            ks = sm.kstats[rp.warp.kernel_id]
            ks.l1_accesses += k
            ks.l1_misses += k
    sm._skip_until = t
    sm._span_hard = hard


def run_event_loop(gpu, limit: int, monitor, interval: int) -> None:
    """Event-engine replacement for the reference main loop in
    :meth:`repro.sim.gpu.GPU.run`; advances ``gpu.now`` to exactly the
    cycle the reference loop would have stopped at, with bit-identical
    component state."""
    sub = gpu.subsystem
    sms = gpu.sms
    obs = gpu.obs
    wd = gpu.watchdog
    wd_interval = wd.check_interval if wd is not None else 0
    obs_interval = obs.window_interval if obs is not None else 0
    now = gpu.now
    hook_at = _next_hook(now, limit, interval, obs_interval, wd_interval)
    cap_box = [0]
    while now < limit:
        # Cheap done probe: unfinished_warps is a plain attribute, and
        # an SM with zero unfinished warps and an empty CTA slot is done
        # (gpu.done confirms before exiting).
        running = False
        for sm in sms:
            if sm.unfinished_warps:
                running = True
                break
        if not running and gpu.done:
            break
        # Components read the clock during dispatch (CTA launches,
        # response timestamps), so it must be live every iteration.
        gpu.now = now
        min_wake = sub._next_event
        ran = False
        cap_box[0] = 0
        for sm in sms:
            su = sm._skip_until
            if su > now:
                if su < min_wake:
                    min_wake = su
            else:
                ran = True
                _dispatch(sm, now, hook_at, sub, cap_box)
        # Re-read: SM dispatches may have submitted requests and pulled
        # the subsystem's next event earlier (possibly to `now` itself
        # under a zero-latency interconnect).
        if sub._next_event <= now:
            sub.cycle_event(now)
            ran = True
        now += 1
        if not ran and min_wake > now:
            # Quiet iteration: every SM is inside a span and the
            # subsystem has no ripe work.  Jump to the next wake-up,
            # never crossing a hook boundary.
            tgt = min_wake if min_wake < hook_at else hook_at
            if tgt > now:
                now = tgt
        if now >= hook_at:
            gpu.now = now
            for sm in sms:
                if sm._span_from >= 0:
                    sm._settle_span(now)
            sub.sync_accounting(now)
            if interval and now % interval == 0:
                monitor.sample(gpu, now)
            if obs_interval and now % obs_interval == 0:
                obs.flush(gpu, now)
            if wd_interval and now % wd_interval == 0:
                wd.check(gpu, now)
            hook_at = _next_hook(now, limit, interval, obs_interval,
                                 wd_interval)
    gpu.now = now
    for sm in sms:
        if sm._span_from >= 0:
            sm._settle_span(now)
    sub.sync_accounting(now)


def flush_memory_event(gpu, limit: int) -> None:
    """Event-engine counterpart of :meth:`repro.sim.gpu.GPU._flush_memory`.

    Drains in-flight traffic after the last warp retires, skipping the
    quiet gaps between subsystem events.  The drain deadline counts
    *simulated* cycles — identical to the reference formula — so the
    fast engine can neither trip nor mask the post-run drain cap."""
    sub = gpu.subsystem
    sms = gpu.sms
    t = gpu.now
    deadline = t + min(100_000, max(0, limit - t) + 100_000)
    while t < deadline:
        busy = False
        for sm in sms:
            if sm.miss_queue or sm.store_queue or sm.prefetch_miss_queue:
                sm._drain_miss_queue(t)
                busy = True
        if sub._next_event <= t:
            sub.cycle_event(t)
        t += 1
        if not busy:
            if sub.drained():
                break
            ne = sub._next_event
            if ne > t:
                if ne > deadline:
                    ne = deadline
                t = ne
    sub.sync_accounting(t)
