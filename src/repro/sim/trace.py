"""Load-stream tracing.

A :class:`LoadTracer` is an inert prefetcher that records every demand
load the SM issues — (cycle, SM, CTA, warp, PC, address, iteration) —
without perturbing the simulation.  It backs the Figure 1 experiment
(offline inter-warp stride analysis), and is generally useful for
debugging workload models: :func:`trace_kernel` runs a kernel and hands
back the merged, time-ordered records.
"""

from __future__ import annotations

import csv
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.prefetch.base import Prefetcher
from repro.sim.gpu import SimResult, simulate
from repro.sim.kernel import KernelInfo


@dataclass(frozen=True)
class LoadRecord:
    """One dynamic demand load (first coalesced transaction address)."""

    cycle: int
    sm_id: int
    cta_id: int
    warp_slot: int
    warp_in_cta: int
    pc: int
    address: int
    iteration: int
    indirect: bool
    transactions: int


class LoadTracer(Prefetcher):
    """Records the SM's demand-load stream; never prefetches."""

    name = "trace"

    def __init__(self, config: GPUConfig, sm_id: int):
        super().__init__(config, sm_id)
        self.records: List[LoadRecord] = []

    def on_load_issue(self, warp, site, addresses, line_addrs, iteration, now):
        self.records.append(
            LoadRecord(
                cycle=now,
                sm_id=self.sm_id,
                cta_id=warp.cta_id,
                warp_slot=warp.slot,
                warp_in_cta=warp.warp_in_cta,
                pc=site.pc,
                address=addresses[0],
                iteration=iteration,
                indirect=site.indirect,
                transactions=len(addresses),
            )
        )
        return []


@dataclass
class TraceResult:
    """Simulation outcome plus the merged load trace."""

    result: SimResult
    records: List[LoadRecord]

    def by_sm(self) -> Dict[int, List[LoadRecord]]:
        out: Dict[int, List[LoadRecord]] = {}
        for r in self.records:
            out.setdefault(r.sm_id, []).append(r)
        return out

    def by_pc(self, sm_id: Optional[int] = None) -> Dict[int, List[LoadRecord]]:
        out: Dict[int, List[LoadRecord]] = {}
        for r in self.records:
            if sm_id is not None and r.sm_id != sm_id:
                continue
            out.setdefault(r.pc, []).append(r)
        return out

    def to_csv(self, path) -> None:
        """Dump the trace as CSV (one row per dynamic load)."""
        fields = [f for f in LoadRecord.__dataclass_fields__]
        with open(path, "w", newline="") as fh:
            w = csv.DictWriter(fh, fieldnames=fields)
            w.writeheader()
            for r in self.records:
                w.writerow(asdict(r))


def trace_kernel(
    kernel: KernelInfo,
    config: GPUConfig,
    max_cycles: Optional[int] = None,
) -> TraceResult:
    """Run ``kernel`` under a tracing observer and return the merged,
    time-ordered load stream."""
    tracers: List[LoadTracer] = []

    def factory(cfg, sm_id):
        t = LoadTracer(cfg, sm_id)
        tracers.append(t)
        return t

    result = simulate(kernel, config, factory, max_cycles=max_cycles)
    records = sorted(
        (r for t in tracers for r in t.records),
        key=lambda r: (r.cycle, r.sm_id, r.warp_slot),
    )
    return TraceResult(result=result, records=records)
