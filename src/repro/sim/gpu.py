"""Top-level GPU: SMs + shared memory system + CTA distributor.

:func:`simulate` is the main entry point used by examples, tests and the
benchmark harness: it runs one kernel to completion under a given config
and prefetcher and returns a :class:`SimResult` holding every metric the
paper's figures report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import GPUConfig
from repro.guard.invariants import InvariantChecker
from repro.guard.watchdog import Watchdog, build_snapshot
from repro.mem.subsystem import MemorySubsystem
from repro.obs import build as build_obs
from repro.prefetch.base import NoPrefetcher
from repro.prefetch.stats import PrefetchStats
from repro.sim.cta import CTADistributor
from repro.sim.kernel import KernelInfo
from repro.sim.sm import SM, SMStats


@dataclass
class SimResult:
    """Aggregated outcome of one simulation run."""

    kernel: str
    prefetcher: str
    scheduler: str
    cycles: int
    instructions: int
    sm_stats: SMStats
    prefetch_stats: PrefetchStats
    l1_accesses: int
    l1_hits: int
    l1_misses: int
    l2_hit_rate: float
    dram_reads: int
    dram_writes: int
    dram_row_hit_rate: float
    core_requests: int
    core_demand_requests: int
    core_prefetch_requests: int
    core_store_requests: int
    completed: bool
    ctas_total: int
    #: Free-form extras; incomplete runs carry their diagnostic
    #: ``hang_snapshot`` here (see :mod:`repro.guard.watchdog`).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of L1D accesses that hit (demand only)."""
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    def coverage(self) -> float:
        """Prefetch coverage: useful prefetches / demand fetches."""
        return self.prefetch_stats.coverage(self.sm_stats.demand_mem_fetches)

    def accuracy(self) -> float:
        """Prefetch accuracy: useful prefetches / issued prefetches."""
        return self.prefetch_stats.accuracy()

    def stall_fraction(self) -> float:
        """Fraction of SM cycles stalled with every warp waiting on memory."""
        active = self.sm_stats.active_cycles
        return self.sm_stats.stall_mem_all / active if active else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten the headline metrics into a JSON-able dict."""
        return {
            "kernel": self.kernel,
            "prefetcher": self.prefetcher,
            "scheduler": self.scheduler,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "core_requests": self.core_requests,
            "coverage": self.coverage(),
            "accuracy": self.accuracy(),
            "stall_fraction": self.stall_fraction(),
            "completed": self.completed,
            **{f"pf_{k}": v for k, v in self.prefetch_stats.as_dict().items()},
        }


class GPU:
    """Whole-GPU simulation driver.

    Owns the SMs, the shared memory subsystem, the CTA distributor and
    the optional cross-cutting services: the hang watchdog and runtime
    invariants (:mod:`repro.guard`, enabled via ``config.hang_cycles`` /
    ``config.deep_checks``) and the observability hub
    (:mod:`repro.obs`, enabled via ``config.obs``).  Construction
    launches the initial CTA wave; :meth:`run` advances the machine
    cycle by cycle until every CTA retires.

    Most callers should use :func:`simulate` rather than instantiating
    this class directly.
    """

    def __init__(
        self,
        kernel: KernelInfo,
        config: GPUConfig,
        prefetcher_factory=None,
        faults=None,
    ):
        self.kernel = kernel
        self.config = config
        factory = prefetcher_factory or (lambda cfg, sm_id: NoPrefetcher(cfg, sm_id))
        injector = None
        if faults is not None and faults.affects_simulation:
            from repro.guard.faults import MemoryFaultInjector
            injector = MemoryFaultInjector(faults)
        self.subsystem = MemorySubsystem(
            config, config.num_sms, self._on_response, faults=injector
        )
        self.watchdog = (Watchdog(config.hang_cycles)
                         if config.hang_cycles else None)
        self.invariants = InvariantChecker(config)
        # Created before the SMs: _launch_initial() below already emits
        # CTA/warp launch events through the hub.
        self.obs = build_obs(config, config.num_sms)
        self.sms: List[SM] = []
        for sm_id in range(config.num_sms):
            pf = factory(config, sm_id)
            self.sms.append(
                SM(sm_id, config, kernel, pf, self.subsystem,
                   self._on_cta_done, obs=self.obs)
            )
        max_ctas = min(config.max_ctas_per_sm, kernel.max_ctas_per_sm(config))
        self.distributor = CTADistributor(
            num_ctas=kernel.num_ctas,
            num_sms=config.num_sms,
            max_ctas_per_sm=max_ctas,
        )
        self.now = 0
        self._launch_initial()

    def _launch_initial(self) -> None:
        for cta_id, sm_id in self.distributor.initial_fill():
            self.sms[sm_id].launch_cta(cta_id, self.now)

    def _on_response(self, req) -> None:
        self.sms[req.sm_id].on_mem_response(req, self.now)

    def _on_cta_done(self, sm_id: int, cta, now: int) -> None:
        nxt = self.distributor.on_cta_finish(sm_id)
        if nxt is not None:
            self.sms[sm_id].launch_cta(nxt, self.now)

    @property
    def done(self) -> bool:
        """True once every SM has retired all of its CTAs."""
        return all(sm.done for sm in self.sms)

    def run(self, max_cycles: Optional[int] = None,
            monitor=None) -> SimResult:
        """Run to completion (or ``max_cycles``).

        ``monitor`` is an optional sampling observer (e.g.
        :class:`repro.analysis.timeline.TimelineMonitor`): its
        ``sample(gpu, now)`` is invoked every ``monitor.interval``
        cycles.
        """
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        interval = getattr(monitor, "interval", 0)
        wd = self.watchdog
        deep = self.config.deep_checks
        obs = self.obs
        obs_interval = obs.window_interval if obs is not None else 0
        # The event engine is bit-identical to the cycle loop below but
        # skips quiet cycles in batches (repro.sim.fastcore).  Deep
        # per-cycle invariant checks and the profiled loop inspect every
        # cycle by design, so they force the reference path.
        use_event = (
            self.config.engine == "event"
            and not deep
            and (obs is None or obs.profiler is None)
        )
        if obs is not None and obs.profiler is not None:
            self._run_loop_profiled(limit, monitor, interval, obs_interval)
        elif use_event:
            from repro.sim.fastcore import run_event_loop

            run_event_loop(self, limit, monitor, interval)
        else:
            while not self.done and self.now < limit:
                for sm in self.sms:
                    sm.cycle(self.now)
                self.subsystem.cycle(self.now)
                self.now += 1
                if interval and self.now % interval == 0:
                    monitor.sample(self, self.now)
                if obs_interval and self.now % obs_interval == 0:
                    obs.flush(self, self.now)
                if deep:
                    self.invariants.check_cycle(self, self.now)
                if wd is not None and self.now % wd.check_interval == 0:
                    wd.check(self, self.now)
        completed = self.done
        cycles = self.now
        if completed:
            if use_event:
                from repro.sim.fastcore import flush_memory_event

                flush_memory_event(self, limit)
            else:
                self._flush_memory(limit)
        for sm in self.sms:
            sm.finalize()
        if obs is not None:
            obs.finalize(self, cycles)
        self.invariants.verify_end(self, completed)
        result = self._collect(completed, cycles)
        if obs is not None:
            obs.attach_results(result.extra, self.config.num_sms)
        if not completed:
            result.extra["hang_snapshot"] = build_snapshot(self, cycles)
        return result

    def _run_loop_profiled(self, limit: int, monitor, interval: int,
                           obs_interval: int) -> None:
        """Main loop variant with per-phase wall timing (``obs.profile``).

        Kept separate from the default loop so the common un-profiled
        path carries no timing calls at all."""
        obs = self.obs
        prof = obs.profiler
        wd = self.watchdog
        deep = self.config.deep_checks
        perf = time.perf_counter
        cycles0 = self.now
        while not self.done and self.now < limit:
            t0 = perf()
            for sm in self.sms:
                sm.cycle(self.now)
            t1 = perf()
            self.subsystem.cycle(self.now)
            t2 = perf()
            prof.add("sm_cycle", t1 - t0)
            prof.add("mem_cycle", t2 - t1)
            self.now += 1
            if interval and self.now % interval == 0:
                monitor.sample(self, self.now)
            if obs_interval and self.now % obs_interval == 0:
                t3 = perf()
                obs.flush(self, self.now)
                prof.add("obs_flush", perf() - t3)
            if deep:
                t4 = perf()
                self.invariants.check_cycle(self, self.now)
                prof.add("deep_checks", perf() - t4)
            if wd is not None and self.now % wd.check_interval == 0:
                wd.check(self, self.now)
        # Record the simulated-cycle count so profile consumers can
        # derive host-seconds-per-cycle without the SimResult in hand.
        prof.add("cycles", 0.0, calls=self.now - cycles0)

    def _flush_memory(self, limit: int) -> None:
        """Drain in-flight stores/prefetches after the last warp retires
        so traffic counters balance.  Flush cycles are not charged to the
        kernel (completion time is the last warp's retirement)."""
        t = self.now
        deadline = t + min(100_000, max(0, limit - t) + 100_000)
        while t < deadline:
            busy = False
            for sm in self.sms:
                if sm.miss_queue or sm.store_queue or sm.prefetch_miss_queue:
                    sm._drain_miss_queue(t)
                    busy = True
            self.subsystem.cycle(t)
            t += 1
            if not busy and self.subsystem.drained():
                return

    def _collect(self, completed: bool, cycles: Optional[int] = None) -> SimResult:
        sm_stats = SMStats()
        pstats = PrefetchStats()
        l1_acc = l1_hit = l1_miss = 0
        for sm in self.sms:
            sm_stats.merge(sm.stats)
            pstats.merge(sm.pstats)
            l1_acc += sm.l1.accesses
            l1_hit += sm.l1.hits
            l1_miss += sm.l1.misses
        sub = self.subsystem
        return SimResult(
            kernel=self.kernel.name,
            prefetcher=self.sms[0].prefetcher.name,
            scheduler=self.config.scheduler.value,
            cycles=cycles if cycles is not None else self.now,
            instructions=sm_stats.instructions,
            sm_stats=sm_stats,
            prefetch_stats=pstats,
            l1_accesses=l1_acc,
            l1_hits=l1_hit,
            l1_misses=l1_miss,
            l2_hit_rate=sub.l2_hit_rate(),
            dram_reads=sub.dram_reads,
            dram_writes=sub.dram_writes,
            dram_row_hit_rate=sub.dram_row_hit_rate,
            core_requests=sub.core_requests,
            core_demand_requests=sub.core_demand_requests,
            core_prefetch_requests=sub.core_prefetch_requests,
            core_store_requests=sub.core_store_requests,
            completed=completed,
            ctas_total=self.kernel.num_ctas,
        )


def simulate(
    kernel: KernelInfo,
    config: GPUConfig,
    prefetcher_factory=None,
    max_cycles: Optional[int] = None,
    monitor=None,
    faults=None,
) -> SimResult:
    """Run ``kernel`` on a fresh GPU and return its :class:`SimResult`.

    ``faults`` is an optional :class:`repro.guard.faults.FaultPlan`; when
    it perturbs simulation timing the memory subsystem routes responses
    through a seeded injector (chaos testing only — such results are
    never persisted to the shared result cache).
    """
    gpu = GPU(kernel, config, prefetcher_factory, faults=faults)
    return gpu.run(max_cycles=max_cycles, monitor=monitor)
