"""CTA distribution across SMs (paper Section II-B, Figure 3).

CTAs are handed to SMs one at a time in round-robin order until every SM
holds its concurrent-CTA limit; afterwards assignment is purely
demand-driven — a new CTA goes to whichever SM finishes one first.  This
is why consecutive CTAs rarely share an SM, and why inter-CTA strides
observed inside one SM are irregular: the key motivation for per-CTA base
address discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CTAAssignment:
    cta_id: int
    sm_id: int
    issue_order: int


class CTADistributor:
    """Issues CTA ids to SMs; records the assignment history."""

    def __init__(self, num_ctas: int, num_sms: int, max_ctas_per_sm: int):
        if num_ctas < 1 or num_sms < 1 or max_ctas_per_sm < 1:
            raise ValueError("num_ctas, num_sms, max_ctas_per_sm must be >= 1")
        self.num_ctas = num_ctas
        self.num_sms = num_sms
        self.max_ctas_per_sm = max_ctas_per_sm
        self._next_cta = 0
        self._active_per_sm = [0] * num_sms
        self._rr_pointer = 0
        self._initial_phase = True
        self.history: List[CTAAssignment] = []

    @property
    def remaining(self) -> int:
        """CTAs not yet issued."""
        return self.num_ctas - self._next_cta

    @property
    def exhausted(self) -> bool:
        return self._next_cta >= self.num_ctas

    def active_on(self, sm_id: int) -> int:
        return self._active_per_sm[sm_id]

    def initial_fill(self) -> List[Tuple[int, int]]:
        """Round-robin initial distribution at kernel launch.

        Assigns one CTA per SM per round until all SMs are full or CTAs
        run out.  Returns ``(cta_id, sm_id)`` pairs in issue order.
        """
        if not self._initial_phase:
            raise RuntimeError("initial_fill may only be called once")
        self._initial_phase = False
        out: List[Tuple[int, int]] = []
        for _round in range(self.max_ctas_per_sm):
            for sm in range(self.num_sms):
                if self.exhausted:
                    return out
                out.append((self._issue_to(sm), sm))
        return out

    def on_cta_finish(self, sm_id: int) -> Optional[int]:
        """Demand-driven refill: the finishing SM gets the next CTA."""
        if not 0 <= sm_id < self.num_sms:
            raise IndexError(f"sm_id {sm_id} out of range")
        if self._active_per_sm[sm_id] <= 0:
            raise RuntimeError(f"SM {sm_id} has no active CTA to finish")
        self._active_per_sm[sm_id] -= 1
        if self.exhausted:
            return None
        return self._issue_to(sm_id)

    def _issue_to(self, sm_id: int) -> int:
        cta = self._next_cta
        self._next_cta += 1
        self._active_per_sm[sm_id] += 1
        self.history.append(
            CTAAssignment(cta_id=cta, sm_id=sm_id, issue_order=len(self.history))
        )
        return cta

    def ctas_seen_by(self, sm_id: int) -> List[int]:
        """All CTA ids ever assigned to ``sm_id`` (in issue order)."""
        return [a.cta_id for a in self.history if a.sm_id == sm_id]
