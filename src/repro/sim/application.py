"""Multi-kernel applications (paper Figure 2b).

A GPU application is a sequence of kernels; caches and DRAM row state
persist between them, so a later kernel can hit on an earlier kernel's
output (producer/consumer pipelines).  :func:`simulate_application`
runs a kernel list back-to-back on one shared memory system and reports
per-kernel results plus application-level aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.config import GPUConfig
from repro.sim.gpu import GPU, SimResult
from repro.sim.kernel import KernelInfo


@dataclass
class ApplicationResult:
    """Outcome of a multi-kernel run."""

    kernels: List[SimResult]
    total_cycles: int
    total_instructions: int

    @property
    def ipc(self) -> float:
        return (self.total_instructions / self.total_cycles
                if self.total_cycles else 0.0)

    @property
    def completed(self) -> bool:
        return all(k.completed for k in self.kernels)


def simulate_application(
    kernels: Sequence[KernelInfo],
    config: GPUConfig,
    prefetcher_factory: Optional[Callable] = None,
    max_cycles_per_kernel: Optional[int] = None,
) -> ApplicationResult:
    """Run ``kernels`` sequentially with a persistent memory system.

    Each kernel gets fresh SMs (fresh L1s and prefetcher state — kernel
    launches flush the L1 on real GPUs) but the L2 slices and DRAM
    open-row state carry over, so inter-kernel reuse is modeled.
    Per-kernel traffic counters are reported as deltas.
    """
    if not kernels:
        raise ValueError("application needs at least one kernel")
    results: List[SimResult] = []
    total_cycles = 0
    subsystem = None
    for kernel in kernels:
        gpu = GPU(kernel, config, prefetcher_factory)
        if subsystem is not None:
            # Adopt the previous kernel's memory system: keep L2/DRAM
            # state, rebind the response path to the new SMs, zero the
            # traffic counters so per-kernel stats are deltas.
            subsystem.on_response = gpu._on_response
            subsystem.core_requests = 0
            subsystem.core_demand_requests = 0
            subsystem.core_prefetch_requests = 0
            subsystem.core_store_requests = 0
            subsystem.responses_delivered = 0
            for part in subsystem.partitions:
                part.cache.accesses = part.cache.hits = part.cache.misses = 0
            for ch in subsystem.channels:
                ch.reads = ch.writes = 0
                ch.row_hits = ch.row_misses = 0
                # The new kernel restarts the clock at 0: clear absolute
                # bank/bus timestamps (keep the open-row state — that is
                # the physical carry-over being modeled).
                ch._bank_free.clear()
                ch._bus_free = 0
            gpu.subsystem = subsystem
            for sm in gpu.sms:
                sm.subsystem = subsystem
        result = gpu.run(max_cycles=max_cycles_per_kernel)
        results.append(result)
        total_cycles += result.cycles
        subsystem = gpu.subsystem
    return ApplicationResult(
        kernels=results,
        total_cycles=total_cycles,
        total_instructions=sum(r.instructions for r in results),
    )
