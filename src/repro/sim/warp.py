"""Warp runtime state."""

from __future__ import annotations

import enum
import itertools

from repro.sim.isa import WarpCursor, WarpProgram


class WarpState(enum.Enum):
    READY = "ready"          # may issue when ready_at <= now
    WAITING_MEM = "waiting"  # blocked on outstanding load pieces
    FINISHED = "finished"


_warp_uid = itertools.count()


class Warp:
    """One warp resident on an SM.

    ``slot`` is the warp's position in SM launch order (the "warp id"
    that inter-warp stride prefetchers index by); ``warp_in_cta`` its
    position inside the owning CTA; ``leading`` the PAS one-bit leading
    warp marker (Section V-A).
    """

    __slots__ = (
        "uid", "sm_id", "slot", "cta_slot", "cta_id", "warp_in_cta",
        "kernel_id", "cursor", "state", "ready_at", "pending_pieces",
        "defer_budget", "exit_pending", "leading", "lead_loads_issued",
        "instructions_issued", "launch_cycle", "finish_cycle",
        "blocked_since",
    )

    def __init__(
        self,
        sm_id: int,
        slot: int,
        cta_slot: int,
        cta_id: int,
        warp_in_cta: int,
        program: WarpProgram,
        *,
        leading: bool = False,
        launch_cycle: int = 0,
        kernel_id: int = 0,
    ):
        self.uid = next(_warp_uid)
        self.sm_id = sm_id
        self.slot = slot
        self.cta_slot = cta_slot
        self.cta_id = cta_id
        self.warp_in_cta = warp_in_cta
        self.kernel_id = kernel_id
        self.cursor: WarpCursor = program.cursor()
        self.state = WarpState.READY
        self.ready_at = launch_cycle
        self.pending_pieces = 0
        self.defer_budget = 0
        # EXIT reached while deferred loads were still outstanding: the
        # warp retires when the last piece arrives.
        self.exit_pending = False
        self.leading = leading
        self.lead_loads_issued = 0
        self.instructions_issued = 0
        self.launch_cycle = launch_cycle
        self.finish_cycle = -1
        self.blocked_since = -1

    @property
    def finished(self) -> bool:
        return self.state is WarpState.FINISHED

    def issuable(self, now: int) -> bool:
        return self.state is WarpState.READY and self.ready_at <= now

    def block_on_memory(self, pieces: int, now: int) -> None:
        """Block immediately on ``pieces`` outstanding load transactions."""
        if pieces < 1:
            raise ValueError("must block on at least one piece")
        self.state = WarpState.WAITING_MEM
        self.pending_pieces += pieces
        self.defer_budget = 0
        self.blocked_since = now

    def defer_on_memory(self, pieces: int, use_distance: int) -> None:
        """Issue a load whose first use is ``use_distance`` instructions
        away: the warp keeps issuing until the budget runs out (or data
        arrives first), modelling compiler-scheduled independent
        instructions below a load."""
        if pieces < 1:
            raise ValueError("must track at least one piece")
        if use_distance < 1:
            raise ValueError("use block_on_memory for distance 0")
        self.pending_pieces += pieces
        self.defer_budget = max(self.defer_budget, use_distance)

    def charge_defer_budget(self, now: int) -> bool:
        """Called after this warp issues an instruction while pieces are
        outstanding under a defer budget; True if the warp just ran out
        of independent instructions and blocked."""
        if self.pending_pieces == 0 or self.defer_budget == 0:
            return False
        self.defer_budget -= 1
        if self.defer_budget == 0:
            self.state = WarpState.WAITING_MEM
            self.blocked_since = now
            return True
        return False

    def piece_arrived(self, now: int) -> bool:
        """One outstanding load piece completed; True if warp unblocked."""
        if self.pending_pieces <= 0:
            raise RuntimeError(f"warp {self.uid} has no outstanding pieces")
        self.pending_pieces -= 1
        if self.pending_pieces == 0:
            self.defer_budget = 0
            if self.state is WarpState.WAITING_MEM:
                self.state = WarpState.READY
                self.ready_at = now + 1
                self.blocked_since = -1
                return True
        return False

    def finish(self, now: int) -> None:
        self.state = WarpState.FINISHED
        self.finish_cycle = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Warp sm={self.sm_id} slot={self.slot} cta={self.cta_id}"
            f".{self.warp_in_cta} {self.state.value}>"
        )
