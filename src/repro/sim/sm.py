"""Streaming multiprocessor: issue pipeline, L1D/LSU, prefetch port.

Per cycle an SM:

1. completes L1-hit load pieces whose hit latency elapsed;
2. drains its miss queue into the interconnect;
3. replays a load whose line transactions previously failed reservation
   (MSHR or miss-queue full) — the pipeline-stall mechanism behind the
   paper's bursty-miss congestion;
4. lets the warp scheduler issue one instruction;
5. services one queued prefetch candidate if the L1 port is idle
   (prefetches have strictly lower priority than demand accesses).

Warps issuing a load block until every coalesced line transaction of the
load has data (an L1 hit completes after the hit latency; a miss when the
fill returns).  The two-level scheduler moves blocked warps to its
pending pool, matching the paper's baseline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import GPUConfig
from repro.mem.cache import Cache
from repro.mem.request import Access, MemoryRequest
from repro.mem.subsystem import MemorySubsystem
from repro.prefetch.base import Prefetcher, PrefetchCandidate
from repro.prefetch.stats import PrefetchStats
from repro.sim.coalesce import coalesce
from repro.sim.isa import AddressContext, Instr, InstrKind
from repro.sim.kernel import KernelInfo
from repro.sim.sched import make_scheduler
from repro.sim.warp import Warp, WarpState

#: Maximum queued prefetch candidates per SM; overflow drops the oldest.
PREFETCH_QUEUE_DEPTH = 128
#: L1 miss-queue entries drained into the interconnect per cycle.
MISS_QUEUE_DRAIN = 2
#: Store issue latency (cycles until the issuing warp may issue again).
STORE_LATENCY = 4

#: Concurrent-kernel address virtualization: kernel ``k`` of a co-run
#: lives at byte offset ``k << KERNEL_ADDR_SHIFT`` (see
#: :func:`repro.sim.multi.virtualize_kernel`), so any line address maps
#: back to its owning kernel with a single shift.  Single-kernel runs
#: use offset 0 and always resolve to kernel 0.
KERNEL_ADDR_SHIFT = 44


@dataclass
class CTAState:
    slot: int
    cta_id: int
    warps: List[Warp]
    unfinished: int
    #: Owning kernel (multi-kernel runs; equals ``SM.kernel`` otherwise).
    kernel: Optional[KernelInfo] = None
    kernel_id: int = 0
    launch_cycle: int = 0


@dataclass
class SMStats:
    instructions: int = 0
    loads_issued: int = 0
    stores_issued: int = 0
    demand_l1_accesses: int = 0
    demand_mem_fetches: int = 0
    replay_cycles: int = 0
    replay_store_cycles: int = 0
    stall_mem_all: int = 0
    stall_mem_partial: int = 0
    stall_other: int = 0
    issue_cycles: int = 0
    active_cycles: int = 0
    ctas_executed: int = 0

    def merge(self, other: "SMStats") -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass
class KernelStats:
    """Per-kernel slice of an SM's counters (concurrent-kernel runs).

    Maintained only when the SM runs in multi-kernel mode; the guard
    layer asserts the slices conservation-sum to the global counters
    (instructions, loads/stores, L1, MSHR, CTAs — the cycle-overlap
    counters ``active/issue/stall_*`` are per-kernel perspectives and
    legitimately exceed the wall-clock totals).
    """

    instructions: int = 0
    loads_issued: int = 0
    stores_issued: int = 0
    demand_l1_accesses: int = 0
    demand_mem_fetches: int = 0
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    mshr_allocated: int = 0
    mshr_released: int = 0
    issue_cycles: int = 0
    active_cycles: int = 0
    stall_mem_all: int = 0
    stall_mem_partial: int = 0
    stall_other: int = 0
    ctas_executed: int = 0

    def merge(self, other: "KernelStats") -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass
class _InflightPrefetch:
    """An issued prefetch whose line has not filled L1 yet.

    Prefetches occupy their own in-flight buffer (the prefetch request
    generator's bookkeeping) rather than demand MSHRs, so a burst of
    demand misses can never be blocked by outstanding prefetches nor
    vice versa.  Demand misses to an in-flight prefetched line attach as
    ``waiters`` (and promote the request to demand priority downstream).
    """

    issue_cycle: int
    pc: int
    target_warp_uid: int
    req: MemoryRequest
    waiters: List[int] = field(default_factory=list)


@dataclass
class _Replay:
    """A load (or store) stalled mid-way through its line transactions."""

    warp: Optional[Warp]
    pc: int
    remaining: List[int]
    is_store: bool
    iteration: int


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        kernel: KernelInfo,
        prefetcher: Prefetcher,
        subsystem: MemorySubsystem,
        on_cta_done: Callable,
        obs=None,
        multi: bool = False,
    ):
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.prefetcher = prefetcher
        self.subsystem = subsystem
        self.on_cta_done = on_cta_done
        #: Observability hub (:class:`repro.obs.Observability`) or None.
        #: None is the fast path: every hook site is a bare attribute test.
        self.obs = obs
        prefetcher.obs = obs

        self.l1 = Cache(config.l1d, name=f"l1d.{sm_id}")
        self.scheduler = make_scheduler(config)
        self.stats = SMStats()
        self.pstats = PrefetchStats()

        self.miss_queue: Deque[MemoryRequest] = deque()
        self.miss_queue_depth = config.l1d.miss_queue_depth
        # Write-through stores drain through their own buffer so bursts
        # of writes neither block demand misses nor starve the prefetch
        # path.
        self.store_queue: Deque[MemoryRequest] = deque()
        self.store_queue_depth = 2 * config.l1d.miss_queue_depth
        self.prefetch_queue: Deque[PrefetchCandidate] = deque()
        self.prefetch_miss_queue: Deque[MemoryRequest] = deque()
        # Pollution feedback: number of prefetched-but-unused lines
        # resident in L1.  The prefetch port defers when more than a
        # quarter of the cache holds speculative lines, which naturally
        # delays too-early prefetches until consumption catches up.
        self.unused_prefetched_resident = 0
        self._prefetch_resident_limit = config.l1d.num_lines // 4
        self.prefetch_miss_queue_depth = config.prefetch.prefetch_miss_queue_depth
        self.prefetch_inflight_limit = config.prefetch.prefetch_inflight_entries
        self._queued_prefetch_lines: set = set()
        self._hit_heap: List[Tuple[int, int]] = []  # (ready_cycle, warp_uid)
        self._hit_seq = 0
        # Event engine bookkeeping: cycles below this were batch-executed
        # (or batch-accounted) by repro.sim.fastcore; external events
        # (responses, CTA launches) reset it so the SM re-enters the
        # per-cycle path at once.  The cycle engine never reads it.
        self._skip_until = 0
        # Open lazy stall span: first skipped cycle (-1 = none) and
        # whether each skipped cycle also charged a failed replay
        # attempt.  Settled by _settle_span when the span ends.
        self._span_from = -1
        self._span_replay = False
        # A "hard" issue span is response-tolerant: its pre-executed
        # issues provably cannot be altered by a memory response (full
        # ready queue, no eager wake-up), so responses must NOT reset
        # _skip_until mid-span.
        self._span_hard = False
        self._hard_span_ok = not (
            prefetcher.wants_eager_wakeup and config.prefetch.eager_wakeup
        )
        self.replay: Optional[_Replay] = None
        self._inflight_prefetch: Dict[int, _InflightPrefetch] = {}

        self.cta_slots: List[Optional[CTAState]] = [None] * config.max_ctas_per_sm
        self.warps_by_uid: Dict[int, Warp] = {}
        self.warp_by_slot: Dict[int, Warp] = {}
        self._next_warp_slot = 0
        self.unfinished_warps = 0
        self.waiting_mem_warps = 0

        self._mark_leading = (
            config.scheduler.prefetch_aware or prefetcher.wants_leading_warps
        )
        self._kernel_load_sites: Dict[int, int] = {
            kernel.kernel_id: max(1, len(kernel.program.load_sites()))
        }

        # Concurrent-kernel accounting (all dormant when ``multi`` is
        # False — the single-kernel hot path pays one bool test per
        # site).  ``kstats``/``pstats_k`` slice the global counters per
        # kernel id; ``k_unfinished``/``k_waiting`` mirror the SM-wide
        # warp counts per kernel for the per-kernel stall classifier.
        self._multi = multi
        self.kstats: Dict[int, KernelStats] = {}
        self.pstats_k: Dict[int, PrefetchStats] = {}
        self.k_unfinished: Dict[int, int] = {}
        self.k_waiting: Dict[int, int] = {}
        self._issued_kid = -1

    # ------------------------------------------------------------- CTA launch
    def free_slot(self) -> Optional[int]:
        for i, s in enumerate(self.cta_slots):
            if s is None:
                return i
        return None

    def launch_cta(self, cta_id: int, now: int,
                   kernel: Optional[KernelInfo] = None) -> None:
        if self._span_from >= 0:  # defensive: launches reach a lazy-span
            self._settle_span(now)  # SM only via its own cycle
        if not self._span_hard:
            # A response-driven launch lands new warps in the eligible
            # pool (ready queue full by the hard-span precondition), so
            # a hard issue span keeps running.
            self._skip_until = 0
        slot = self.free_slot()
        if slot is None:
            raise RuntimeError(f"SM {self.sm_id} has no free CTA slot")
        kernel = kernel if kernel is not None else self.kernel
        kid = kernel.kernel_id
        if kid not in self._kernel_load_sites:
            self._kernel_load_sites[kid] = max(
                1, len(kernel.program.load_sites())
            )
        warps: List[Warp] = []
        for w in range(kernel.warps_per_cta):
            warp = Warp(
                sm_id=self.sm_id,
                slot=self._next_warp_slot,
                cta_slot=slot,
                cta_id=cta_id,
                warp_in_cta=w,
                program=kernel.program,
                leading=self._mark_leading and w == 0,
                launch_cycle=now,
                kernel_id=kid,
            )
            self._next_warp_slot += 1
            warps.append(warp)
            self.warps_by_uid[warp.uid] = warp
            self.warp_by_slot[warp.slot] = warp
        self.cta_slots[slot] = CTAState(
            slot=slot, cta_id=cta_id, warps=warps, unfinished=len(warps),
            kernel=kernel, kernel_id=kid, launch_cycle=now,
        )
        self.unfinished_warps += len(warps)
        if self._multi:
            self.k_unfinished[kid] = (
                self.k_unfinished.get(kid, 0) + len(warps)
            )
            if kid not in self.kstats:
                self.kstats[kid] = KernelStats()
                self.pstats_k[kid] = PrefetchStats()
        if self.prefetcher.wants_group_interleave:
            # ORCH: consecutive warps land in different scheduling groups.
            order = sorted(warps, key=lambda w: (w.warp_in_cta % 2, w.warp_in_cta))
        else:
            order = warps
        for warp in order:
            self.scheduler.add_warp(warp)
        self.prefetcher.on_cta_launch(slot, cta_id, warps)
        if self.obs is not None:
            self.obs.cta_launch(
                self.sm_id, cta_id, now,
                interleaved=self.prefetcher.wants_group_interleave,
                kernel_id=kid,
            )
            for warp in warps:
                self.obs.warp_launch(warp, now)

    @property
    def done(self) -> bool:
        return self.unfinished_warps == 0 and all(s is None for s in self.cta_slots)

    # ---------------------------------------------------------------- cycling
    def cycle(self, now: int) -> None:
        if self.unfinished_warps == 0:
            self._drain_miss_queue(now)
            return
        hh = self._hit_heap
        if hh and hh[0][0] <= now:
            self._complete_hits(now)
        if self.miss_queue or self.store_queue or self.prefetch_miss_queue:
            self._drain_miss_queue(now)

        lsu_busy = False
        replay_progressed = False
        if self.replay is not None:
            lsu_busy = True
            self.stats.replay_cycles += 1
            if self.replay.is_store:
                self.stats.replay_store_cycles += 1
            replay_progressed = self._run_replay(now)

        issued = self._issue(now, lsu_free=not lsu_busy)
        if issued:
            self.stats.issue_cycles += 1
        else:
            self._account_stall()
        self.stats.active_cycles += 1
        if self._multi:
            if issued:
                self._kernel_issue_cycle(self._issued_kid)
                self._issued_kid = -1
            else:
                self._kernel_stall_cycles(1)

        # The L1 port is free for a prefetch when no demand access used
        # it: no memory instruction issued and any replay attempt failed
        # its reservation (a blocked replay performs no transaction).
        port_used = issued == "mem" or replay_progressed
        if (
            not port_used
            and self.prefetch_queue
            and self.unused_prefetched_resident < self._prefetch_resident_limit
        ):
            self._service_prefetch(now)

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which :meth:`cycle` does more
        than accrue a stall — the SM half of the event engine's
        next-event contract (docs/architecture.md).

        Returns ``now`` whenever any per-cycle work is pending (ripe L1
        hits, queued misses/stores/prefetches, an active replay, a
        serviceable prefetch candidate, or an issuable warp); otherwise
        the earliest cycle a resident warp could issue.  External events
        (memory responses, CTA launches) may move the true next event
        earlier at any time; the event engine accounts for that with the
        memory subsystem's response bound.
        """
        if self.unfinished_warps == 0:
            if self.miss_queue or self.store_queue or self.prefetch_miss_queue:
                return now
            return 1 << 62
        if (
            self.replay is not None
            or self.miss_queue
            or self.store_queue
            or self.prefetch_miss_queue
            or (self._hit_heap and self._hit_heap[0][0] <= now)
            or (
                self.prefetch_queue
                and self.unused_prefetched_resident < self._prefetch_resident_limit
            )
        ):
            return now
        nxt = self.scheduler.next_issue_cycle()
        pf_next = self.prefetcher.next_event_cycle(now)
        if pf_next < nxt:
            nxt = pf_next
        if self._hit_heap and self._hit_heap[0][0] < nxt:
            nxt = self._hit_heap[0][0]
        return now if nxt <= now else nxt

    def _settle_span(self, upto: int) -> None:
        """Close the open lazy stall span, accruing cycles ``[_span_from,
        upto)`` exactly as the reference per-cycle path would have.

        The event engine (:mod:`repro.sim.fastcore`) opens a lazy span
        when no warp can issue before a known wake-up cycle: counters
        are deferred rather than accrued eagerly, so the span needs no
        response bound — an early memory response simply settles the
        shorter prefix.  Callers: the event-engine dispatch (natural
        expiry), :meth:`on_mem_response` (early truncation), and the
        hook/exit points of the main loop (observer reads).  The stall
        classification and the wedged-replay charge are constant over
        the span because every mutation source either runs through the
        per-cycle path or settles the span first."""
        k = upto - self._span_from
        self._span_from = -1
        replay = self._span_replay
        self._span_replay = False
        if k <= 0:
            return
        stats = self.stats
        stats.active_cycles += k
        if self.waiting_mem_warps >= self.unfinished_warps:
            stats.stall_mem_all += k
        elif self.waiting_mem_warps > 0:
            stats.stall_mem_partial += k
        else:
            stats.stall_other += k
        if replay:
            stats.replay_cycles += k
            l1 = self.l1
            l1._tick += k
            l1.accesses += k
            l1.misses += k
        if self._multi:
            self._kernel_stall_cycles(k)
            if replay:
                ks = self.kstats[self.replay.warp.kernel_id]
                ks.l1_accesses += k
                ks.l1_misses += k

    def _account_stall(self) -> None:
        if self.waiting_mem_warps >= self.unfinished_warps and self.unfinished_warps:
            self.stats.stall_mem_all += 1
        elif self.waiting_mem_warps > 0:
            self.stats.stall_mem_partial += 1
        else:
            self.stats.stall_other += 1

    # ------------------------------------------------- per-kernel accounting
    def _kernel_stall_cycles(self, k: int) -> None:
        """Multi-mode: charge ``k`` non-issue cycles to every kernel with
        unfinished warps on this SM, classified from that kernel's own
        waiting/unfinished counts (constant over a span: blocks,
        unblocks, finishes and launches all end spans first)."""
        for kid, unfin in self.k_unfinished.items():
            if unfin <= 0:
                continue
            ks = self.kstats[kid]
            ks.active_cycles += k
            kw = self.k_waiting.get(kid, 0)
            if kw >= unfin:
                ks.stall_mem_all += k
            elif kw > 0:
                ks.stall_mem_partial += k
            else:
                ks.stall_other += k

    def _kernel_issue_cycle(self, issued_kid: int) -> None:
        """Multi-mode: one cycle in which kernel ``issued_kid`` issued;
        co-resident kernels see the same cycle as a stall of their own."""
        for kid, unfin in self.k_unfinished.items():
            if kid == issued_kid or unfin <= 0:
                continue
            ks = self.kstats[kid]
            ks.active_cycles += 1
            kw = self.k_waiting.get(kid, 0)
            if kw >= unfin:
                ks.stall_mem_all += 1
            elif kw > 0:
                ks.stall_mem_partial += 1
            else:
                ks.stall_other += 1
        ks = self.kstats[issued_kid]
        ks.active_cycles += 1
        ks.issue_cycles += 1

    def _complete_hits(self, now: int) -> None:
        heap = self._hit_heap
        while heap and heap[0][0] <= now:
            _, warp_uid = heapq.heappop(heap)
            warp = self.warps_by_uid[warp_uid]
            self._piece_arrived(warp, now)

    def _piece_arrived(self, warp: Warp, now: int) -> None:
        since = warp.blocked_since
        if warp.piece_arrived(now):
            self.waiting_mem_warps -= 1
            if self._multi:
                self.k_waiting[warp.kernel_id] -= 1
            if self.obs is not None and since >= 0:
                self.obs.warp_unblock(warp, since, now)
            if warp.exit_pending:
                self._finish_warp(warp, now)
            else:
                self.scheduler.on_unblock(warp)

    def _charge_defer(self, warp: Warp, now: int) -> None:
        if warp.charge_defer_budget(now):
            self.waiting_mem_warps += 1
            if self._multi:
                self.k_waiting[warp.kernel_id] = (
                    self.k_waiting.get(warp.kernel_id, 0) + 1
                )
            self.scheduler.on_block(warp)
            if self.obs is not None:
                self.obs.warp_block(warp, now)

    def _drain_miss_queue(self, now: int) -> None:
        for _ in range(MISS_QUEUE_DRAIN):
            if not self.miss_queue:
                break
            if not self.subsystem.submit(self.miss_queue[0], now):
                break
            self.miss_queue.popleft()
        # Stores and prefetches have their own injection slots so write
        # or prefetch bursts never wait behind demand-miss bursts (and
        # vice versa); prefetch priority is enforced downstream (FR-FCFS).
        if self.store_queue and self.subsystem.submit(self.store_queue[0], now):
            self.store_queue.popleft()
        if self.prefetch_miss_queue and self.subsystem.submit(
            self.prefetch_miss_queue[0], now
        ):
            self.prefetch_miss_queue.popleft()

    # ------------------------------------------------------------------ issue
    def _issue(self, now: int, lsu_free: bool):
        """Issue at most one instruction; returns False, "alu" or "mem"."""
        warp = self.scheduler.pick(now, lsu_free)
        if warp is None:
            return False
        if self._multi:
            self._issued_kid = warp.kernel_id
        instr = warp.cursor.next_instr()
        if instr.kind is InstrKind.EXIT:
            if warp.pending_pieces:
                # Deferred loads still in flight: a warp cannot retire
                # with outstanding memory requests.  Block; the last
                # arriving piece completes the retirement.
                warp.exit_pending = True
                warp.state = WarpState.WAITING_MEM
                warp.blocked_since = now
                self.waiting_mem_warps += 1
                if self._multi:
                    self.k_waiting[warp.kernel_id] = (
                        self.k_waiting.get(warp.kernel_id, 0) + 1
                    )
                self.scheduler.on_block(warp)
                if self.obs is not None:
                    self.obs.warp_block(warp, now)
            else:
                self._finish_warp(warp, now)
            return "alu"
        warp.instructions_issued += 1
        self.stats.instructions += 1
        if self._multi:
            self.kstats[warp.kernel_id].instructions += 1
        if instr.kind is InstrKind.ALU:
            warp.ready_at = now + instr.latency
            self._charge_defer(warp, now)
            return "alu"
        if instr.kind is InstrKind.LOAD:
            self._issue_load(warp, instr, now)
            return "mem"
        if instr.kind is InstrKind.STORE:
            self._issue_store(warp, instr, now)
            self._charge_defer(warp, now)
            return "mem"
        raise AssertionError(f"unexpected instr {instr!r}")  # pragma: no cover

    def _ctx(self, warp: Warp, iteration: int) -> AddressContext:
        kernel = self.cta_slots[warp.cta_slot].kernel
        return AddressContext(
            cta_id=warp.cta_id,
            warp_in_cta=warp.warp_in_cta,
            iteration=iteration,
            warps_per_cta=kernel.warps_per_cta,
            num_ctas=kernel.num_ctas,
        )

    def _issue_load(self, warp: Warp, instr: Instr, now: int) -> None:
        site = instr.site
        addrs = site.addresses(self._ctx(warp, instr.iteration))
        line_addrs = coalesce(addrs, self.l1.line_bytes)
        self.stats.loads_issued += 1
        self.stats.demand_l1_accesses += len(line_addrs)
        if self._multi:
            ks = self.kstats[warp.kernel_id]
            ks.loads_issued += 1
            ks.demand_l1_accesses += len(line_addrs)
        cands = self.prefetcher.on_load_issue(
            warp, site, addrs, line_addrs, instr.iteration, now
        )
        if cands:
            self.enqueue_prefetches(cands)
        if warp.leading:
            # The leading-warp marker expires once the warp has issued
            # the targeted loads: its job — computing the CTA's base
            # addresses early — is done, and keeping it prioritized
            # would only skew trailing-warp progress.
            warp.lead_loads_issued += 1
            targeted = min(
                self.config.prefetch.dist_entries,
                self._kernel_load_sites[warp.kernel_id],
            )
            if warp.lead_loads_issued >= targeted:
                warp.leading = False
                if self.obs is not None:
                    self.obs.lead_disarm(warp, now)
        if instr.use_distance > 0 and warp.pending_pieces == 0:
            # Independent instructions follow: the warp keeps issuing
            # (compiler-scheduled ILP below the load).
            warp.defer_on_memory(len(line_addrs), instr.use_distance)
        else:
            # A further memory op while pieces are outstanding ends any
            # deferral window: block on everything in flight.
            already_blocked = warp.state is WarpState.WAITING_MEM
            warp.block_on_memory(len(line_addrs), now)
            if not already_blocked:
                self.waiting_mem_warps += 1
                if self._multi:
                    self.k_waiting[warp.kernel_id] = (
                        self.k_waiting.get(warp.kernel_id, 0) + 1
                    )
                self.scheduler.on_block(warp)
                if self.obs is not None:
                    self.obs.warp_block(warp, now)
        remaining = list(line_addrs)
        self._process_demand_lines(warp, instr.site.pc, remaining, instr.iteration, now)
        if remaining:
            self.replay = _Replay(
                warp=warp,
                pc=site.pc,
                remaining=remaining,
                is_store=False,
                iteration=instr.iteration,
            )

    def _issue_store(self, warp: Warp, instr: Instr, now: int) -> None:
        site = instr.site
        addrs = site.addresses(self._ctx(warp, instr.iteration))
        line_addrs = coalesce(addrs, self.l1.line_bytes)
        self.stats.stores_issued += 1
        if self._multi:
            self.kstats[warp.kernel_id].stores_issued += 1
        warp.ready_at = now + STORE_LATENCY
        remaining = list(line_addrs)
        self._process_store_lines(warp, site.pc, remaining, now)
        if remaining:
            self.replay = _Replay(
                warp=warp,
                pc=site.pc,
                remaining=remaining,
                is_store=True,
                iteration=instr.iteration,
            )

    def _run_replay(self, now: int) -> bool:
        """Retry a blocked load/store; True if any line made progress."""
        rp = self.replay
        before = len(rp.remaining)
        if rp.is_store:
            self._process_store_lines(rp.warp, rp.pc, rp.remaining, now)
        else:
            self._process_demand_lines(rp.warp, rp.pc, rp.remaining, rp.iteration, now)
        if not rp.remaining:
            self.replay = None
        return len(rp.remaining) < before

    def _process_demand_lines(
        self,
        warp: Warp,
        pc: int,
        remaining: List[int],
        iteration: int,
        now: int,
    ) -> None:
        """Consume line transactions from ``remaining`` until done or a
        reservation failure (MSHR/miss-queue full) forces a replay."""
        while remaining:
            line_addr = remaining[0]
            line = self.l1.lookup(line_addr)
            if self._multi:
                ks = self.kstats[warp.kernel_id]
                ks.l1_accesses += 1
                if line is not None:
                    ks.l1_hits += 1
                else:
                    ks.l1_misses += 1
            if line is not None:
                if line.prefetched and not line.used:
                    line.used = True
                    self.unused_prefetched_resident -= 1
                    self.pstats.record_useful(now - line.prefetch_issue_cycle)
                    if self._multi:
                        self.pstats_k[warp.kernel_id].record_useful(
                            now - line.prefetch_issue_cycle
                        )
                    if self.obs is not None:
                        self.obs.pf_useful(
                            self.sm_id, now - line.prefetch_issue_cycle, now
                        )
                    if (
                        self.prefetcher.wants_eager_wakeup
                        and self.config.prefetch.eager_wakeup
                    ):
                        # consumed; nothing to wake (this warp is the consumer)
                        pass
                heapq.heappush(
                    self._hit_heap, (now + self.l1.config.hit_latency, warp.uid)
                )
                remaining.pop(0)
                continue
            meta = self._inflight_prefetch.get(line_addr)
            if meta is not None:
                # Demand caught an in-flight prefetch: wait on its fill
                # (partial latency hiding) and promote the request to
                # demand priority downstream.
                if len(meta.waiters) >= self.l1.mshr.merge_limit:
                    return  # replay
                if not meta.waiters:
                    # Count the prefetch as consumed once (further
                    # demand warps merging are ordinary MSHR-style
                    # merges, not additional prefetch successes).
                    self.pstats.record_late_merge(now - meta.issue_cycle)
                    if self._multi:
                        self.pstats_k[warp.kernel_id].record_late_merge(
                            now - meta.issue_cycle
                        )
                    if self.obs is not None:
                        self.obs.pf_late_merge(
                            self.sm_id, now - meta.issue_cycle, now
                        )
                meta.waiters.append(warp.uid)
                meta.req.access = Access.DEMAND
                remaining.pop(0)
                continue
            mshr = self.l1.mshr
            if mshr.pending(line_addr):
                if not mshr.can_merge(line_addr):
                    return  # replay
                req = MemoryRequest(
                    line_addr=line_addr,
                    sm_id=self.sm_id,
                    access=Access.DEMAND,
                    pc=pc,
                    warp_uid=warp.uid,
                    issue_cycle=now,
                    kernel_id=warp.kernel_id,
                )
                mshr.merge(req)
                remaining.pop(0)
                continue
            if mshr.full or len(self.miss_queue) >= self.miss_queue_depth:
                return  # replay
            req = MemoryRequest(
                line_addr=line_addr,
                sm_id=self.sm_id,
                access=Access.DEMAND,
                pc=pc,
                warp_uid=warp.uid,
                issue_cycle=now,
                kernel_id=warp.kernel_id,
            )
            mshr.allocate(req)
            self.miss_queue.append(req)
            self.stats.demand_mem_fetches += 1
            if self._multi:
                ks = self.kstats[warp.kernel_id]
                ks.demand_mem_fetches += 1
                ks.mshr_allocated += 1
            cands = self.prefetcher.on_l1_miss(warp, pc, line_addr, now)
            if cands:
                self.enqueue_prefetches(cands)
            remaining.pop(0)

    def _process_store_lines(
        self, warp: Warp, pc: int, remaining: List[int], now: int
    ) -> None:
        while remaining:
            if len(self.store_queue) >= self.store_queue_depth:
                return  # replay
            line_addr = remaining.pop(0)
            self.store_queue.append(
                MemoryRequest(
                    line_addr=line_addr,
                    sm_id=self.sm_id,
                    access=Access.STORE,
                    pc=pc,
                    warp_uid=warp.uid,
                    issue_cycle=now,
                    kernel_id=warp.kernel_id,
                )
            )

    # -------------------------------------------------------------- prefetch
    def _pk(self, line_addr: int) -> PrefetchStats:
        """Per-kernel prefetch stats slice owning ``line_addr`` (multi
        mode only); kernels occupy disjoint address ranges, so the owner
        is exact."""
        kid = line_addr >> KERNEL_ADDR_SHIFT
        pk = self.pstats_k.get(kid)
        if pk is None:
            pk = self.pstats_k[kid] = PrefetchStats()
        return pk

    def enqueue_prefetches(self, cands: List[PrefetchCandidate]) -> None:
        self.pstats.candidates += len(cands)
        multi = self._multi
        for c in cands:
            line = self.l1.align(c.line_addr)
            if multi:
                pk = self._pk(line)
                pk.candidates += 1
            if line in self._queued_prefetch_lines:
                continue
            if len(self.prefetch_queue) >= PREFETCH_QUEUE_DEPTH:
                # Tail drop: queued prefetches are older and therefore
                # closer to their demand; the incoming one is furthest in
                # the future and cheapest to lose.
                self.pstats.queue_drops += 1
                if multi:
                    pk.queue_drops += 1
                continue
            self.prefetch_queue.append(c)
            self._queued_prefetch_lines.add(line)

    def _service_prefetch(self, now: int) -> None:
        cand = self.prefetch_queue.popleft()
        line_addr = self.l1.align(cand.line_addr)
        self._queued_prefetch_lines.discard(line_addr)
        multi = self._multi
        if self.l1.probe(line_addr) is not None:
            self.pstats.drop_l1_hit += 1
            if multi:
                self._pk(line_addr).drop_l1_hit += 1
            return
        if self.l1.mshr.pending(line_addr) or line_addr in self._inflight_prefetch:
            self.pstats.drop_inflight += 1
            if multi:
                self._pk(line_addr).drop_inflight += 1
            return
        if (
            len(self._inflight_prefetch) >= self.prefetch_inflight_limit
            or len(self.prefetch_miss_queue) >= self.prefetch_miss_queue_depth
        ):
            self.pstats.drop_resource += 1
            if multi:
                self._pk(line_addr).drop_resource += 1
            return
        req = MemoryRequest(
            line_addr=line_addr,
            sm_id=self.sm_id,
            access=Access.PREFETCH,
            pc=cand.pc,
            target_warp=cand.target_warp_uid,
            issue_cycle=now,
            kernel_id=line_addr >> KERNEL_ADDR_SHIFT,
        )
        self.prefetch_miss_queue.append(req)
        self._inflight_prefetch[line_addr] = _InflightPrefetch(
            issue_cycle=now,
            pc=cand.pc,
            target_warp_uid=cand.target_warp_uid,
            req=req,
        )
        self.pstats.issued += 1
        if multi:
            self._pk(line_addr).issued += 1
        if self.obs is not None:
            self.obs.pf_issue(req, now)

    # -------------------------------------------------------------- responses
    def on_mem_response(self, req: MemoryRequest, now: int) -> None:
        if self._span_from >= 0:
            # The SM phase of cycle `now` already passed (skipped inside
            # the span) before this subsystem-phase delivery: settle
            # through `now` inclusive, with pre-response warp counts.
            self._settle_span(now + 1)
            self._skip_until = 0
        elif not self._span_hard:
            self._skip_until = 0
        line_addr = req.line_addr
        meta = self._inflight_prefetch.get(line_addr)
        if meta is not None and req is meta.req:
            self._on_prefetch_fill(meta, now)
            return
        merged = self.l1.mshr.release(line_addr)
        if self._multi:
            self.kstats[req.kernel_id].mshr_released += 1
        victim = self.l1.fill(line_addr, cycle=now)
        if victim is not None and victim.prefetched and not victim.used:
            self.pstats.early_evicted += 1
            if self._multi:
                self._pk(victim.line_addr).early_evicted += 1
            self.unused_prefetched_resident -= 1
            if self.obs is not None:
                self.obs.pf_early_evict(self.sm_id, now)
        for m in merged:
            if m.access is Access.DEMAND:
                warp = self.warps_by_uid.get(m.warp_uid)
                # Credit by outstanding pieces, not by state: a deferred
                # warp (use_distance) is READY while its load is in
                # flight and must still receive its data.
                if warp is not None and warp.pending_pieces > 0:
                    self._piece_arrived(warp, now)

    def _on_prefetch_fill(self, meta: "_InflightPrefetch", now: int) -> None:
        line_addr = meta.req.line_addr
        del self._inflight_prefetch[line_addr]
        untouched = not meta.waiters
        victim = self.l1.fill(
            line_addr,
            cycle=now,
            prefetched=untouched,
            prefetch_pc=meta.pc,
            prefetch_issue_cycle=meta.issue_cycle,
        )
        if self.obs is not None:
            self.obs.pf_fill(meta.req, now)
        if untouched:
            self.unused_prefetched_resident += 1
        if victim is not None and victim.prefetched and not victim.used:
            self.pstats.early_evicted += 1
            if self._multi:
                self._pk(victim.line_addr).early_evicted += 1
            self.unused_prefetched_resident -= 1
            if self.obs is not None:
                self.obs.pf_early_evict(self.sm_id, now)
        for uid in meta.waiters:
            warp = self.warps_by_uid.get(uid)
            if warp is not None and warp.pending_pieces > 0:
                self._piece_arrived(warp, now)
        if (
            untouched
            and self.prefetcher.wants_eager_wakeup
            and self.config.prefetch.eager_wakeup
            and meta.target_warp_uid >= 0
        ):
            target = self.warps_by_uid.get(meta.target_warp_uid)
            if target is not None and not target.finished:
                self.scheduler.on_prefetch_fill(target)
                if self.obs is not None:
                    self.obs.eager_wakeup(target, now)

    # ------------------------------------------------------------ warp finish
    def _finish_warp(self, warp: Warp, now: int) -> None:
        warp.finish(now)
        if self.obs is not None:
            self.obs.warp_finish(warp, now)
        self.scheduler.remove_warp(warp)
        self.unfinished_warps -= 1
        cta = self.cta_slots[warp.cta_slot]
        cta.unfinished -= 1
        if self._multi:
            self.k_unfinished[warp.kernel_id] -= 1
        if cta.unfinished == 0:
            self.cta_slots[warp.cta_slot] = None
            self.stats.ctas_executed += 1
            if self._multi:
                self.kstats[cta.kernel_id].ctas_executed += 1
            for w in cta.warps:
                self.warps_by_uid.pop(w.uid, None)
                self.warp_by_slot.pop(w.slot, None)
            self.prefetcher.on_cta_finish(cta.slot, cta.cta_id)
            self.on_cta_done(self.sm_id, cta, now)

    # -------------------------------------------------------------- finalize
    def finalize(self) -> None:
        """Classify leftover prefetched lines as unused (run end)."""
        l1 = self.l1
        for idx, cset in enumerate(l1._sets):
            for tag, line in cset.items():
                if line.prefetched and not line.used:
                    self.pstats.unused_at_end += 1
                    if self._multi:
                        addr = ((tag << l1._set_shift) | idx) << l1._line_shift
                        self._pk(addr).unused_at_end += 1
        for m in self._inflight_prefetch.values():
            if not m.waiters:
                self.pstats.unused_at_end += 1
                if self._multi:
                    self._pk(m.req.line_addr).unused_at_end += 1
