"""CAPS reproduction: CTA-Aware Prefetching and Scheduling for GPU.

Reproduces Koo et al., *CTA-Aware Prefetching and Scheduling for GPU*,
IPDPS 2018, on a simplified cycle-level SIMT GPU simulator.

Quickstart::

    from repro import fermi_config, simulate, make_prefetcher
    from repro.workloads import build

    kernel = build("MM")
    base = simulate(kernel, fermi_config())
    caps = simulate(
        kernel,
        fermi_config().with_scheduler(SchedulerKind.PAS),
        make_prefetcher("caps"),
    )
    print(caps.ipc / base.ipc)

See :mod:`repro.analysis` for the experiment driver that regenerates the
paper's tables and figures.
"""

from repro.config import (
    CacheConfig,
    CTAResources,
    DRAMConfig,
    GPUConfig,
    InterconnectConfig,
    ObsConfig,
    PrefetcherConfig,
    SchedulerKind,
    fermi_config,
    occupancy,
    small_config,
    test_config,
)
from repro.sim import (
    ApplicationResult,
    GPU,
    KernelInfo,
    SimResult,
    simulate,
    simulate_application,
    trace_kernel,
)
from repro.prefetch import PREFETCHERS, make_prefetcher
from repro.prefetch.factory import default_scheduler_for

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CTAResources",
    "DRAMConfig",
    "GPUConfig",
    "InterconnectConfig",
    "ObsConfig",
    "PrefetcherConfig",
    "SchedulerKind",
    "fermi_config",
    "occupancy",
    "small_config",
    "test_config",
    "GPU",
    "KernelInfo",
    "SimResult",
    "simulate",
    "ApplicationResult",
    "simulate_application",
    "trace_kernel",
    "PREFETCHERS",
    "make_prefetcher",
    "default_scheduler_for",
    "__version__",
]
