"""Address-pattern library for the workload models.

Every pattern is an :data:`repro.sim.isa.AddressFn`: a pure function of
the :class:`repro.sim.isa.AddressContext`, so runs are deterministic and
reproducible.  Patterns model the index expressions of Section IV:

* :func:`linear` — 1D arrays indexed by the global thread id: Θ(CTA) is
  an affine function of the linear CTA id, warps stride by C3;
* :func:`pitched_2d` — 2D pitched arrays (LPS/STE/CNV style): Θ(CTA)
  depends on both CTA coordinates and the row pitch, so inter-CTA
  distances inside an SM are irregular even though intra-CTA warp
  strides are constant;
* :func:`tiled` — MM-style tiles: per-loop-iteration offsets move by a
  tile stride (intra-warp strides for INTRA to train on);
* :func:`irregular_warp_stride` — HSP-style halo effects: the per-warp
  offset is non-affine in the warp index, defeating single-stride
  predictors (CAPS detects the mismatch and throttles);
* :func:`indirect` — data-dependent gather (BFS edges, KM centroids):
  pseudo-random lines from a hashed (CTA, warp, iteration) tuple;
* :func:`broadcast` — one address for every warp (constant/LUT reads).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.isa import AddressContext, AddressFn

_M64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """SplitMix64 finalizer — the deterministic RNG behind indirect
    patterns (no global state, stable across runs)."""
    x &= _M64
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) & _M64


def linear(
    base: int,
    *,
    warp_stride: int = 128,
    lines_per_access: int = 1,
    line_bytes: int = 128,
    iter_stride: int = 0,
) -> AddressFn:
    """1D array indexed by global thread id.

    ``addr = base + (cta·warps_per_cta + warp)·warp_stride
    + iteration·iter_stride``.  Consecutive CTAs are contiguous in
    memory, but CTAs sharing an SM are not consecutive (demand-driven
    distribution), so the SM-local inter-CTA stride is still irregular.
    """

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        start = (
            base
            + (ctx.cta_id * ctx.warps_per_cta + ctx.warp_in_cta) * warp_stride
            + ctx.iteration * iter_stride
        )
        return tuple(start + i * line_bytes for i in range(lines_per_access))

    return fn


def pitched_2d(
    base: int,
    *,
    grid_x: int,
    pitch: int,
    cta_rows: int,
    cta_cols_bytes: int,
    warp_stride: Optional[int] = None,
    lines_per_access: int = 1,
    line_bytes: int = 128,
    iter_stride: int = 0,
) -> AddressFn:
    """2D pitched array: the LPS example of Figure 6a.

    Θ(CTA) = cta_y·cta_rows·pitch + cta_x·cta_cols_bytes.  By default
    each warp covers one row (``warp_stride`` = the row ``pitch``, the
    kernel-wide constant C3, as in LPS where the y thread dimension maps
    to warps); pass a small ``warp_stride`` (e.g. one line) for kernels
    whose warps split a row segment (CNV-style tiles, which keep DRAM
    row locality).  Either way Θ jumps irregularly between the CTAs an
    SM happens to receive.
    """
    ws = pitch if warp_stride is None else warp_stride

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        cta_x = ctx.cta_id % grid_x
        cta_y = ctx.cta_id // grid_x
        theta = base + cta_y * cta_rows * pitch + cta_x * cta_cols_bytes
        start = theta + ctx.warp_in_cta * ws + ctx.iteration * iter_stride
        return tuple(start + i * line_bytes for i in range(lines_per_access))

    return fn


def tiled(
    base: int,
    *,
    grid_x: int,
    row_pitch: int,
    tile_stride: int,
    cta_rows_bytes: int,
    cta_cols_bytes: int = 0,
    lines_per_access: int = 1,
    line_bytes: int = 128,
) -> AddressFn:
    """MM-style tiled access: each loop iteration advances the tile.

    Warps stride by ``row_pitch`` inside the tile; each k-loop iteration
    shifts the whole tile by ``tile_stride`` (an intra-warp stride the
    INTRA/MTA engines can train on after two iterations).
    """

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        cta_x = ctx.cta_id % grid_x
        cta_y = ctx.cta_id // grid_x
        theta = base + cta_y * cta_rows_bytes + cta_x * cta_cols_bytes
        start = (
            theta
            + ctx.warp_in_cta * row_pitch
            + ctx.iteration * tile_stride
        )
        return tuple(start + i * line_bytes for i in range(lines_per_access))

    return fn


def irregular_warp_stride(
    base: int,
    *,
    grid_x: int,
    pitch: int,
    halo_bytes: int,
    cta_rows: int,
    lines_per_access: int = 1,
    line_bytes: int = 128,
) -> AddressFn:
    """HSP-style stencil with halo rows: warp offsets are non-affine.

    Even-indexed warps read their row; odd-indexed warps additionally
    skip the halo, so consecutive warp deltas alternate between
    ``pitch`` and ``pitch + halo_bytes``.  A single-stride predictor
    trained on one pair mispredicts the next — CAPS's verification
    counter catches this and shuts the PC down (low coverage on HSP in
    Figure 12a).
    """

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        cta_x = ctx.cta_id % grid_x
        cta_y = ctx.cta_id // grid_x
        theta = base + cta_y * cta_rows * pitch + cta_x * (pitch // max(grid_x, 1))
        w = ctx.warp_in_cta
        start = theta + w * pitch + (w // 2) * halo_bytes
        return tuple(start + i * line_bytes for i in range(lines_per_access))

    return fn


def indirect(
    base: int,
    *,
    region_lines: int,
    requests: int = 8,
    seed: int = 0x5EED,
    line_bytes: int = 128,
) -> AddressFn:
    """Data-dependent gather: pseudo-random lines in a region.

    Models the ``g_graph_edges[i]``-indexed accesses of Figure 6b: the
    address depends on loaded data, so no warp-stride structure exists.
    ``requests`` controls divergence (coalesced transactions per warp);
    values above 4 exceed CAPS's targeting filter, as in the paper.
    """
    if region_lines < 1:
        raise ValueError("region must hold at least one line")

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        key = (
            seed
            ^ (ctx.cta_id * 0x1003F)
            ^ (ctx.warp_in_cta * 0x10000019)
            ^ (ctx.iteration * 0x100000001B3)
        )
        out = []
        for i in range(requests):
            line = mix64(key + i * 0x9E37) % region_lines
            out.append(base + line * line_bytes)
        return tuple(out)

    return fn


def broadcast(addr: int) -> AddressFn:
    """Every warp reads the same address (kernel constants / LUTs)."""

    def fn(ctx: AddressContext) -> Tuple[int, ...]:
        return (addr,)

    return fn


# --------------------------------------------------------------------------
# Region allocator: gives each array of a kernel model a distinct,
# generously spaced base address so patterns never alias by accident.
# --------------------------------------------------------------------------

class RegionAllocator:
    """Hands out 16MB-aligned array base addresses."""

    REGION_BYTES = 1 << 24

    def __init__(self, start: int = 1 << 28):
        self._next = start
        self.regions = {}

    def alloc(self, name: str) -> int:
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self._next
        self._next += self.REGION_BYTES
        self.regions[name] = base
        return base
