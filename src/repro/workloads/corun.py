"""Curated co-run pairs for the concurrent-kernel experiments.

The interference study (docs/architecture.md, "Concurrent-kernel
execution") crosses a memory-intensive kernel with a compute-bound one:
that is the regime where the CTA allocation policy matters most — the
memory kernel hoards bandwidth while the compute kernel starves for CTA
slots, so preemptive SRTF allocation can drain the short kernel early
and buy ANTT without hurting throughput.

Each pair is expressed as the canonical ``"A+B"`` co-run benchmark
string accepted everywhere a single abbreviation is (``repro run
--co-run``, :func:`repro.analysis.driver.make_key`, the serve
protocol).  Kernel order matters for per-kernel records (kernel 0 is
listed first) but not for the cache key semantics — ``"A+B"`` and
``"B+A"`` are distinct schedules and distinct cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.workloads.suite import canonical_name

__all__ = ["CorunPair", "CORUN_PAIRS", "DEFAULT_PAIR", "corun_name"]


@dataclass(frozen=True)
class CorunPair:
    """One curated two-kernel co-schedule.

    ``memory`` is the bandwidth/latency-bound kernel, ``compute`` the
    ALU-bound one; ``name`` is the canonical co-run benchmark string
    (memory kernel first, so its per-kernel record is ``kernels[0]``).
    """

    memory: str
    compute: str
    #: One-line rationale shown in figure captions.
    why: str = ""

    @property
    def name(self) -> str:
        return corun_name(self.memory, self.compute)


def corun_name(*benchmarks: str) -> str:
    """Canonical co-run benchmark string for the given kernels."""
    if len(benchmarks) < 2:
        raise ValueError("a co-run names at least two kernels")
    return "+".join(canonical_name(b) for b in benchmarks)


#: The interference-figure pairs: memory-divergent × compute-bound.
CORUN_PAIRS: Tuple[CorunPair, ...] = (
    CorunPair("MRQ", "MM",
              "streaming MapReduce query vs. tiled SGEMM (the paper's "
              "canonical bandwidth-vs-ALU cross)"),
    CorunPair("BFS", "CP",
              "irregular frontier expansion vs. embarrassingly regular "
              "Coulomb potential"),
    CorunPair("KM", "FFT",
              "data-dependent clustering vs. butterfly compute"),
)

#: The pair pinned by tests and the CI smoke run.
DEFAULT_PAIR: CorunPair = CORUN_PAIRS[0]
