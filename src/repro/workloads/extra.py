"""Extra workload models outside the Table IV suite.

Currently: the paper's Section I motivation example.  The introduction
measures *nearest neighbor* (CUDA SDK) spending 62% of its execution
cycles with the pipeline stalled because every warp is waiting on L1 —
the observation that motivates the whole paper.  ``build_nn`` models it:
a register-hungry kernel (occupancy-limited to two CTAs per SM) issuing
a cluster of point-coordinate loads with almost no arithmetic, so the
few resident warps run out of latency tolerance together.
"""

from __future__ import annotations

from repro.config import CTAResources
from repro.sim.isa import ComputeOp, LoadOp, LoadSite, StoreOp, WarpProgram
from repro.sim.kernel import KernelInfo
from repro.workloads.base import Scale, SCALE_CTAS
from repro.workloads.generators import RegionAllocator, linear

LINE = 128


def build_nn(scale: Scale = Scale.SMALL) -> KernelInfo:
    """Nearest neighbor (CUDA SDK) — the Section I motivation kernel."""
    n = SCALE_CTAS[scale]
    alloc = RegionAllocator()
    ops = [ComputeOp(6)]
    for i in range(6):
        site = LoadSite(
            pc=0,
            pattern=linear(alloc.alloc(f"coord{i}"), warp_stride=LINE),
            name=f"coord{i}",
        )
        ops += [LoadOp(site), ComputeOp(3)]
    out = LoadSite(pc=0, pattern=linear(alloc.alloc("dist"), warp_stride=LINE),
                   name="dist")
    ops += [ComputeOp(16), StoreOp(out)]
    return KernelInfo(
        "NN",
        n,
        4,
        WarpProgram(ops=ops, name="nn"),
        # Register pressure caps occupancy at two CTAs per SM: only
        # eight warps of latency tolerance.
        resources=CTAResources(threads=128, registers_per_thread=128),
    )
