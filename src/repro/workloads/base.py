"""Benchmark specification scaffolding."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.sim.kernel import KernelInfo


class Scale(enum.Enum):
    """Workload sizing.

    ``TINY`` for unit tests (a handful of CTAs), ``SMALL`` for the
    experiment sweeps on :func:`repro.config.small_config` (a few CTA
    waves over 4 SMs), ``FULL`` for the Table III 15-SM machine.  The
    paper simulates up to one billion instructions; the pure-Python
    model scales the grids down while keeping ≥2 waves of CTAs per SM so
    the demand-driven distribution and per-CTA base discovery are fully
    exercised.
    """

    TINY = "tiny"
    SMALL = "small"
    FULL = "full"


#: CTA-count multipliers per scale (builders multiply their wave shape).
SCALE_CTAS: Dict[Scale, int] = {
    Scale.TINY: 8,
    Scale.SMALL: 64,
    Scale.FULL: 240,
}


@dataclass(frozen=True)
class Fig4Stats:
    """Loop/load statistics reported under Figure 4's x-axis.

    ``looped_loads``/``total_loads`` are the paper's published per-app
    counts; ``paper_mean_iterations`` is the figure's bar height for the
    four most frequent loads (approximate where the bar is truncated).
    """

    looped_loads: int
    total_loads: int
    paper_mean_iterations: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table IV workload."""

    abbr: str
    full_name: str
    suite: str
    irregular: bool
    description: str
    fig4: Fig4Stats
    builder: Callable[[Scale], KernelInfo] = field(compare=False)

    def build(self, scale: Scale = Scale.SMALL) -> KernelInfo:
        kernel = self.builder(scale)
        kernel.irregular = self.irregular
        return kernel
