"""The 16 Table IV workload models.

Each builder returns a fresh :class:`repro.sim.kernel.KernelInfo` whose
warp program and address patterns reproduce the benchmark's memory
character: load-site count and loop structure from Figure 4, CTA
geometry where the paper states it (LPS runs (32,4)-thread CTAs = 4
warps; MM runs 8 warps per CTA), stride regularity, and — for the
irregular suite — the mix of predictable thread-indexed metadata loads
and unpredictable indirect gathers dissected in Figure 6b.

Programs follow the canonical GPU kernel shape: an index-computation
preamble, a cluster of global loads (with short address-arithmetic gaps
between them), a long arithmetic phase consuming the loaded values, and
a store.  That shape is what makes L1 misses *bursty* (Section I): a
cohort of warps issues its load cluster almost back-to-back, saturating
MSHRs and memory queues, then the machine goes quiet while the cohort
computes.  The compute tail is each model's latency-tolerance knob and
is calibrated per app to its published memory intensity (CNV nearly
bare, CP/MRQ arithmetic-heavy).

Dynamic trip counts are scaled down from the originals (the paper runs
up to 10⁹ instructions per app on GPGPU-Sim; a pure-Python cycle model
cannot) while preserving the ratios that matter to the prefetchers:
looped vs. loop-free loads, compute-to-load balance, and ≥2 CTA waves
per SM.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.isa import (
    ComputeOp,
    LoadOp,
    LoadSite,
    LoopOp,
    StoreOp,
    WarpProgram,
)
from repro.config import CTAResources
from repro.sim.kernel import KernelInfo
from repro.workloads.base import BenchmarkSpec, Fig4Stats, Scale, SCALE_CTAS
from repro.workloads.generators import (
    RegionAllocator,
    broadcast,
    indirect,
    irregular_warp_stride,
    linear,
    pitched_2d,
    tiled,
)

LINE = 128


def _grid(scale: Scale, grid_x: int = 8) -> Tuple[int, int, int]:
    """(num_ctas, grid_x, grid_y) for a 2D kernel at ``scale``."""
    n = SCALE_CTAS[scale]
    gx = min(grid_x, n)
    gy = max(1, n // gx)
    return gx * gy, gx, gy


def _site(alloc: RegionAllocator, name: str, pattern_fn: Callable, **kw) -> LoadSite:
    base = alloc.alloc(name)
    return LoadSite(pc=0, pattern=pattern_fn(base, **kw), name=name)


# ---------------------------------------------------------------------------
# Regular applications
# ---------------------------------------------------------------------------

def build_cp(scale: Scale) -> KernelInfo:
    """Coulombic Potential — compute-bound: a broadcast atom-table read
    and one streamed grid load feed a long electrostatics loop-unrolled
    arithmetic phase.  Memory latency is almost fully hidden, so every
    prefetcher is near-neutral here (Figure 10)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    atoms = LoadSite(pc=0, pattern=broadcast(alloc.alloc("atoms")), name="atoms")
    grid = _site(alloc, "grid", linear, warp_stride=LINE)
    out = _site(alloc, "out", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(12),
            LoadOp(atoms),
            ComputeOp(10),
            LoadOp(grid),
            ComputeOp(130),
            StoreOp(out),
            ComputeOp(6),
        ],
        name="cp",
    )
    return KernelInfo("CP", n, 4, prog, grid_dim=(gx, gy))


def build_lps(scale: Scale) -> KernelInfo:
    """laplace3D — (32,4) CTAs (4 warps); a clustered plane read plus a
    short z-loop over the north/south planes (2/4 loads looped, Fig. 4);
    the Figure 6a pitched address function."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    pitch = 4224  # 33 lines: padded row pitch (avoids L1 set camping)
    kw = dict(grid_x=gx, pitch=pitch, cta_rows=4, cta_cols_bytes=LINE)
    center = _site(alloc, "u1_center", pitched_2d, **kw)
    halo = _site(alloc, "u1_halo", pitched_2d, **kw)
    north = _site(alloc, "u1_north", pitched_2d, iter_stride=pitch, **kw)
    south = _site(alloc, "u1_south", pitched_2d, iter_stride=pitch, **kw)
    out = _site(alloc, "u2", pitched_2d, **kw)
    prog = WarpProgram(
        ops=[
            ComputeOp(10),
            LoadOp(center),
            ComputeOp(2),
            LoadOp(halo),
            ComputeOp(4),
            LoopOp(3, [LoadOp(north), ComputeOp(2), LoadOp(south), ComputeOp(14)]),
            ComputeOp(36),
            StoreOp(out),
        ],
        name="lps",
    )
    return KernelInfo("LPS", n, 4, prog, grid_dim=(gx, gy))


def build_bpr(scale: Scale) -> KernelInfo:
    """backprop — layer-to-layer weight updates: a cluster of loop-free
    linear loads over distinct arrays, then the weight-delta arithmetic;
    memory-intensive with good CAPS coverage."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    sites = [
        _site(alloc, nm, linear, warp_stride=LINE)
        for nm in ("input", "w_in", "hidden", "w_out")
    ]
    out = _site(alloc, "out", linear, warp_stride=LINE)
    ops: List = [ComputeOp(10)]
    for s in sites:
        ops += [LoadOp(s), ComputeOp(2)]
    ops += [ComputeOp(56), StoreOp(out)]
    prog = WarpProgram(ops=ops, name="bpr")
    return KernelInfo("BPR", n, 6, prog, grid_dim=(gx, gy))


def build_hsp(scale: Scale) -> KernelInfo:
    """hotspot — pyramid stencil with halo rows: per-warp offsets are
    non-affine, so inter-warp strides inside a CTA are irregular; CAPS
    detects the mispredictions and throttles the PCs (low coverage on
    HSP in Figure 12a, near-baseline IPC)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    kw = dict(grid_x=gx, pitch=2176, halo_bytes=384, cta_rows=8)
    temp = _site(alloc, "temp", irregular_warp_stride, **kw)
    power = _site(alloc, "power", irregular_warp_stride, **kw)
    out = _site(alloc, "out", irregular_warp_stride, **kw)
    prog = WarpProgram(
        ops=[
            ComputeOp(12),
            LoadOp(temp),
            ComputeOp(4),
            LoadOp(power),
            ComputeOp(56),
            StoreOp(out),
            ComputeOp(4),
        ],
        name="hsp",
    )
    return KernelInfo("HSP", n, 8, prog, grid_dim=(gx, gy))


def build_mrq(scale: Scale) -> KernelInfo:
    """mri-q — Fourier-transform Q matrix: a cluster of linear sample
    loads feeding long sin/cos chains; arithmetic-heavy, so gains are
    modest."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    sites = [
        _site(alloc, nm, linear, warp_stride=LINE)
        for nm in ("kx", "ky", "kz", "phi_r", "phi_i")
    ]
    out = _site(alloc, "q", linear, warp_stride=LINE)
    ops: List = [ComputeOp(8)]
    for s in sites:
        ops += [LoadOp(s), ComputeOp(6)]
    ops += [ComputeOp(100), StoreOp(out)]
    prog = WarpProgram(ops=ops, name="mrq")
    return KernelInfo("MRQ", n, 8, prog, grid_dim=(gx, gy))


def build_ste(scale: Scale) -> KernelInfo:
    """stencil (Parboil) — 7-point sweep: looped row loads with a
    constant per-iteration stride (the deepest loop nest in the regular
    suite, 8/12 loads looped; INTRA's best case)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    pitch = 4224  # 33 lines: padded row pitch (avoids L1 set camping)
    kw = dict(
        grid_x=gx,
        pitch=pitch,
        cta_rows=6,
        cta_cols_bytes=6 * LINE,
        warp_stride=LINE,
    )
    a0 = alloc.alloc("a0")
    plane0 = LoadSite(pc=0, pattern=pitched_2d(a0, **kw), name="a0_z0")
    # The three looped loads walk the *same* array at plane offsets
    # (z-1, z, z+1): each plane is re-read by later iterations, the real
    # 7-point-stencil reuse that keeps iteration periods short.
    up = LoadSite(pc=0, pattern=pitched_2d(a0, iter_stride=pitch, **kw),
                  name="a0_up")
    row = LoadSite(pc=0, pattern=pitched_2d(a0 + pitch, iter_stride=pitch, **kw),
                   name="a0_row")
    dn = LoadSite(pc=0, pattern=pitched_2d(a0 + 2 * pitch, iter_stride=pitch, **kw),
                  name="a0_dn")
    out = _site(alloc, "anext", pitched_2d, **kw)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoadOp(plane0),
            ComputeOp(2),
            LoopOp(
                4,
                [
                    LoadOp(up),
                    ComputeOp(2),
                    LoadOp(dn),
                    ComputeOp(2),
                    LoadOp(row),
                    ComputeOp(12),
                ],
            ),
            ComputeOp(12),
            StoreOp(out),
        ],
        name="ste",
    )
    return KernelInfo(
        "STE", n, 6, prog, grid_dim=(gx, gy),
        resources=CTAResources(threads=192, registers_per_thread=40),
    )


def build_cnv(scale: Scale) -> KernelInfo:
    """convolutionSeparable — a tight cluster of apron-row loads with
    almost no address arithmetic between them, then the (short) filter
    dot-product: the most latency-exposed workload and CAPS's best case
    (+27% in Figure 10)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    pitch = 8320  # 65 lines: padded row pitch
    kw = dict(
        grid_x=gx,
        pitch=pitch,
        cta_rows=2,
        cta_cols_bytes=8 * LINE,
        warp_stride=LINE,  # warps split a row segment: DRAM-row friendly
    )
    sites = [
        _site(alloc, f"src_ap{i}", pitched_2d, **kw)
        for i in range(4)
    ]
    out = _site(alloc, "dst", pitched_2d, **kw)
    ops: List = [ComputeOp(8)]
    for s in sites:
        ops += [LoadOp(s), ComputeOp(2)]
    ops += [ComputeOp(50), StoreOp(out)]
    prog = WarpProgram(ops=ops, name="cnv")
    return KernelInfo("CNV", n, 8, prog, grid_dim=(gx, gy))


def build_hst(scale: Scale) -> KernelInfo:
    """histogram — each warp scans a data chunk in a loop (the suite's
    single load site, 1/1 looped per Fig. 4) and scatters into bins
    (indirect stores).  Only the first iteration is CAPS-predictable;
    INTRA covers the rest."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    data = _site(
        alloc, "data", linear, warp_stride=8 * LINE, iter_stride=LINE
    )
    bins_base = alloc.alloc("bins")
    bins = LoadSite(
        pc=0,
        pattern=indirect(bins_base, region_lines=256, requests=4, seed=0xB1B5),
        indirect=True,
        name="bins",
    )
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoopOp(8, [LoadOp(data), ComputeOp(14), StoreOp(bins)]),
            ComputeOp(6),
        ],
        name="hst",
    )
    return KernelInfo(
        "HST", n, 8, prog, grid_dim=(gx, gy),
        resources=CTAResources(threads=256, registers_per_thread=32),
    )


def build_jc1(scale: Scale) -> KernelInfo:
    """jacobi1D — 3-point relaxation: three overlapping linear loads per
    warp (neighbouring warps share lines, giving natural L1 reuse) plus
    a coefficient read, then a short update phase."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    base = alloc.alloc("x")
    left = LoadSite(pc=0, pattern=linear(base, warp_stride=LINE), name="x_l")
    mid = LoadSite(pc=0, pattern=linear(base + 1 * LINE, warp_stride=LINE), name="x_m")
    right = LoadSite(pc=0, pattern=linear(base + 2 * LINE, warp_stride=LINE), name="x_r")
    coeff = _site(alloc, "coeff", linear, warp_stride=LINE)
    out = _site(alloc, "y", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoadOp(left),
            ComputeOp(2),
            LoadOp(mid),
            ComputeOp(2),
            LoadOp(right),
            ComputeOp(2),
            LoadOp(coeff),
            ComputeOp(36),
            StoreOp(out),
        ],
        name="jc1",
    )
    return KernelInfo("JC1", n, 6, prog, grid_dim=(gx, gy))


def build_fft(scale: Scale) -> KernelInfo:
    """FFT (SHOC) — butterfly stages: loop-free loads at large
    power-of-two strides (poor DRAM row locality), then twiddle
    arithmetic."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    sites = [
        _site(alloc, f"stage{i}", linear, warp_stride=(1 << (9 + i % 3)))
        for i in range(6)
    ]
    out = _site(alloc, "out", linear, warp_stride=512)
    ops: List = [ComputeOp(10)]
    for s in sites:
        ops += [LoadOp(s), ComputeOp(3)]
    ops += [ComputeOp(52), StoreOp(out)]
    prog = WarpProgram(ops=ops, name="fft")
    return KernelInfo("FFT", n, 8, prog, grid_dim=(gx, gy))


def build_scn(scale: Scale) -> KernelInfo:
    """scan — prefix sum: a single streaming load per element block and
    a store; bandwidth-light, latency-sensitive."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    src = _site(alloc, "src", linear, warp_stride=LINE)
    out = _site(alloc, "dst", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoadOp(src),
            ComputeOp(14),
            StoreOp(out),
            ComputeOp(4),
        ],
        name="scn",
    )
    return KernelInfo("SCN", n, 6, prog, grid_dim=(gx, gy))


def build_mm(scale: Scale) -> KernelInfo:
    """matrixMul — 8 warps per CTA (the Figure 1 workload): both tile
    loads sit in the k-loop (2/2 looped) with a constant tile stride and
    a multiply-accumulate phase per iteration."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    pitch_a = 4224
    a_tile = _site(
        alloc,
        "a_tile",
        tiled,
        grid_x=gx,
        row_pitch=pitch_a,
        tile_stride=LINE,
        cta_rows_bytes=8 * pitch_a,
        cta_cols_bytes=0,
    )
    b_tile = _site(
        alloc,
        "b_tile",
        tiled,
        grid_x=gx,
        row_pitch=2176,
        tile_stride=8 * 2176,
        cta_rows_bytes=0,
        cta_cols_bytes=2 * LINE,
    )
    out = _site(alloc, "c", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(10),
            LoopOp(
                2,
                [LoadOp(a_tile), ComputeOp(2), LoadOp(b_tile), ComputeOp(30)],
            ),
            ComputeOp(8),
            StoreOp(out),
        ],
        name="mm",
    )
    return KernelInfo("MM", n, 8, prog, grid_dim=(gx, gy))


# ---------------------------------------------------------------------------
# Irregular applications
# ---------------------------------------------------------------------------

def build_pvr(scale: Scale) -> KernelInfo:
    """PageViewRank (Mars) — sequential record scans (predictable) plus
    hash-bucket gathers (indirect, excluded from CAPS prefetch)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    keys = _site(alloc, "keys", linear, warp_stride=LINE)
    vals = _site(alloc, "vals", linear, warp_stride=LINE)
    offs = _site(alloc, "offsets", linear, warp_stride=LINE)
    rank_prev = _site(alloc, "rank_prev", linear, warp_stride=LINE)
    bucket_base = alloc.alloc("buckets")
    bucket = LoadSite(
        pc=0,
        pattern=indirect(bucket_base, region_lines=1 << 11, requests=6, seed=0x9A6E),
        indirect=True,
        name="buckets",
    )
    out = _site(alloc, "ranks", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoadOp(keys),
            ComputeOp(2),
            LoadOp(vals),
            ComputeOp(2),
            LoadOp(offs),
            ComputeOp(2),
            LoadOp(rank_prev),
            ComputeOp(24),
            LoopOp(2, [LoadOp(bucket), ComputeOp(40)]),
            ComputeOp(8),
            StoreOp(out),
        ],
        name="pvr",
    )
    return KernelInfo("PVR", n, 6, prog, grid_dim=(gx, gy))


def build_ccl(scale: Scale) -> KernelInfo:
    """Connected Component Labelling — linear label/pixel loads plus a
    neighbour gather whose address depends on loaded labels."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    labels = _site(alloc, "labels", linear, warp_stride=LINE)
    pixels = _site(alloc, "pixels", linear, warp_stride=LINE)
    north = LoadSite(
        pc=0,
        pattern=linear(alloc.alloc("labels_n") + 64, warp_stride=LINE),
        name="labels_n",
    )
    west = _site(alloc, "labels_w", linear, warp_stride=LINE)
    nbr_base = alloc.alloc("nbr")
    nbr = LoadSite(
        pc=0,
        pattern=indirect(nbr_base, region_lines=1 << 11, requests=6, seed=0xCC1),
        indirect=True,
        name="nbr",
    )
    out = _site(alloc, "labels_out", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoadOp(labels),
            ComputeOp(2),
            LoadOp(pixels),
            ComputeOp(2),
            LoadOp(north),
            ComputeOp(2),
            LoadOp(west),
            ComputeOp(28),
            LoopOp(2, [LoadOp(nbr), ComputeOp(44)]),
            ComputeOp(6),
            StoreOp(out),
        ],
        name="ccl",
    )
    return KernelInfo("CCL", n, 6, prog, grid_dim=(gx, gy))


def build_bfs(scale: Scale) -> KernelInfo:
    """Breadth-First Search — the Figure 6b kernel: three predictable
    tid-indexed metadata loads (mask/nodes/cost) and an edge-expansion
    loop of indirect gathers over the edge and visited arrays."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    mask = _site(alloc, "g_graph_mask", linear, warp_stride=LINE)
    nodes = _site(alloc, "g_graph_nodes", linear, warp_stride=2 * LINE,
                  lines_per_access=2)
    cost = _site(alloc, "g_cost", linear, warp_stride=LINE)
    edges_base = alloc.alloc("g_graph_edges")
    visited_base = alloc.alloc("g_graph_visited")
    edges = LoadSite(
        pc=0,
        pattern=indirect(edges_base, region_lines=1 << 12, requests=8, seed=0xBF5),
        indirect=True,
        name="g_graph_edges",
    )
    visited = LoadSite(
        pc=0,
        pattern=indirect(visited_base, region_lines=1 << 11, requests=8, seed=0x715),
        indirect=True,
        name="g_graph_visited",
    )
    upd_base = alloc.alloc("g_updating_mask")
    upd = LoadSite(
        pc=0,
        pattern=indirect(upd_base, region_lines=1 << 11, requests=8, seed=0x0DD),
        indirect=True,
        name="g_updating_mask",
    )
    prog = WarpProgram(
        ops=[
            ComputeOp(6),
            LoadOp(mask),
            ComputeOp(2),
            LoadOp(nodes),
            ComputeOp(2),
            LoadOp(cost),
            ComputeOp(16),
            LoopOp(
                3,
                [LoadOp(edges), ComputeOp(16), LoadOp(visited), ComputeOp(40)],
            ),
            StoreOp(upd),
            ComputeOp(4),
        ],
        name="bfs",
    )
    return KernelInfo("BFS", n, 4, prog, grid_dim=(gx, gy))


def build_km(scale: Scale) -> KernelInfo:
    """Kmeans — per-point feature loads walk a row in a loop
    (predictable, iter-strided) while centroid reads gather a small
    indirect table that caches well; many dynamic loads (144 static in
    the original)."""
    n, gx, gy = _grid(scale)
    alloc = RegionAllocator()
    feats = _site(
        alloc, "features", linear, warp_stride=8 * LINE, iter_stride=LINE
    )
    cent_base = alloc.alloc("centroids")
    cents = LoadSite(
        pc=0,
        pattern=indirect(cent_base, region_lines=16, requests=2, seed=0x101),
        indirect=True,
        name="centroids",
    )
    member = _site(alloc, "membership", linear, warp_stride=LINE)
    prog = WarpProgram(
        ops=[
            ComputeOp(8),
            LoopOp(5, [LoadOp(feats), ComputeOp(2), LoadOp(cents), ComputeOp(12)]),
            ComputeOp(8),
            StoreOp(member),
        ],
        name="km",
    )
    return KernelInfo(
        "KM", n, 8, prog, grid_dim=(gx, gy),
        resources=CTAResources(threads=256, registers_per_thread=32),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _spec(abbr, full, suite, irregular, desc, fig4, builder) -> BenchmarkSpec:
    return BenchmarkSpec(
        abbr=abbr,
        full_name=full,
        suite=suite,
        irregular=irregular,
        description=desc,
        fig4=fig4,
        builder=builder,
    )


WORKLOADS: Dict[str, BenchmarkSpec] = {
    s.abbr: s
    for s in [
        _spec("CP", "Coulombic Potential", "GPGPU-Sim [19]", False,
              "electrostatic potential grid; compute-bound",
              Fig4Stats(0, 2, 1.0), build_cp),
        _spec("LPS", "laplace3D", "GPGPU-Sim [19]", False,
              "3D Laplace solver on pitched planes",
              Fig4Stats(2, 4, 3.0), build_lps),
        _spec("BPR", "backprop", "Rodinia [20]", False,
              "neural-network back-propagation; loop-free linear loads",
              Fig4Stats(0, 14, 1.0), build_bpr),
        _spec("HSP", "hotspot", "Rodinia [20]", False,
              "thermal stencil; irregular inter-warp strides",
              Fig4Stats(0, 2, 1.0), build_hsp),
        _spec("MRQ", "mri-q", "Parboil [27]", False,
              "MRI Q-matrix; trig-heavy with linear sample loads",
              Fig4Stats(0, 7, 1.0), build_mrq),
        _spec("STE", "stencil", "Parboil [27]", False,
              "7-point 3D stencil; looped row loads",
              Fig4Stats(8, 12, 5.0), build_ste),
        _spec("CNV", "convolutionSeparable", "CUDA SDK [5]", False,
              "separable convolution; latency-exposed apron loads",
              Fig4Stats(0, 10, 1.0), build_cnv),
        _spec("HST", "histogram", "CUDA SDK [5]", False,
              "byte histogram; one looped scan load",
              Fig4Stats(1, 1, 8.0), build_hst),
        _spec("JC1", "jacobi1D", "PolyBench [28]", False,
              "1D Jacobi relaxation; overlapping 3-point loads",
              Fig4Stats(0, 4, 1.0), build_jc1),
        _spec("FFT", "FFT", "SHOC [29]", False,
              "radix FFT stage; large-stride butterfly loads",
              Fig4Stats(0, 16, 1.0), build_fft),
        _spec("SCN", "scan", "CUDA SDK [5]", False,
              "prefix sum; single streaming load",
              Fig4Stats(0, 1, 1.0), build_scn),
        _spec("MM", "MatrixMul", "CUDA SDK [5]", False,
              "tiled SGEMM; 8 warps/CTA, looped tile loads",
              Fig4Stats(2, 2, 2.0), build_mm),
        _spec("PVR", "PageViewRank", "Mars [30]", True,
              "MapReduce rank; scans + hash-bucket gathers",
              Fig4Stats(4, 32, 2.0), build_pvr),
        _spec("CCL", "Connected Component Labelling", "IISWC [31]", True,
              "label propagation; neighbour gathers",
              Fig4Stats(1, 22, 1.5), build_ccl),
        _spec("BFS", "Breadth First Search", "Rodinia [20]", True,
              "frontier expansion; indirect edge gathers (Fig. 6b)",
              Fig4Stats(5, 9, 3.0), build_bfs),
        _spec("KM", "Kmeans", "Mars [30]", True,
              "clustering; looped feature loads + centroid gathers",
              Fig4Stats(10, 144, 6.0), build_km),
    ]
}

ALL_BENCHMARKS: Tuple[str, ...] = tuple(WORKLOADS)
REGULAR: Tuple[str, ...] = tuple(a for a, s in WORKLOADS.items() if not s.irregular)
IRREGULAR: Tuple[str, ...] = tuple(a for a, s in WORKLOADS.items() if s.irregular)


#: Alternate names accepted anywhere a benchmark abbreviation is:
#: SGEMM is the common name for the CUDA SDK matrixMul kernel the paper
#: models as MM.
ALIASES: Dict[str, str] = {
    "SGEMM": "MM",
}


def canonical_name(abbr: str) -> str:
    """Uppercase ``abbr`` and resolve :data:`ALIASES` (no validation)."""
    up = abbr.upper()
    return ALIASES.get(up, up)


def get_spec(abbr: str) -> BenchmarkSpec:
    try:
        return WORKLOADS[canonical_name(abbr)]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {abbr!r}; choose from {list(WORKLOADS)}"
        ) from None


def normalize_benchmark(name: str) -> str:
    """Canonical cell-name form of a benchmark or ``"A+B"`` co-run pair.

    Uppercases and de-aliases every ``+``-separated part
    (``"mrq+sgemm"`` → ``"MRQ+MM"``) so equivalent spellings share one
    cache key.  Raises :class:`KeyError` on any unknown part.
    """
    parts = [canonical_name(p) for p in name.split("+")]
    for part in parts:
        if part not in WORKLOADS:
            raise KeyError(
                f"unknown benchmark {part!r} in {name!r}; choose from "
                f"{list(WORKLOADS)}"
            )
    return "+".join(parts)


def build(abbr: str, scale: Scale = Scale.SMALL) -> KernelInfo:
    """Build a fresh kernel model for benchmark ``abbr``."""
    return get_spec(abbr).build(scale)
