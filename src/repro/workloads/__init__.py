"""Synthetic models of the paper's 16 benchmarks (Table IV).

Each benchmark is a parameterized kernel model: grid/CTA geometry, a
warp program (compute phases, loads, loops, stores) and per-load address
patterns that reproduce the app's published memory character — loop/load
counts from Figure 4, regular Θ(CTA)+tid·C3 strides for the regular
suite, irregular warp strides for HSP, and indirect (data-dependent)
accesses for the graph/MapReduce apps (PVR, CCL, BFS, KM).

The CUDA binaries the paper traces are substituted by these models; see
DESIGN.md §2 for why the substitution preserves the prefetcher-visible
behaviour.
"""

from repro.workloads.base import BenchmarkSpec, Scale
from repro.workloads.corun import (
    CORUN_PAIRS,
    DEFAULT_PAIR,
    CorunPair,
    corun_name,
)
from repro.workloads.suite import (
    ALIASES,
    ALL_BENCHMARKS,
    IRREGULAR,
    REGULAR,
    WORKLOADS,
    build,
    canonical_name,
    get_spec,
    normalize_benchmark,
)

__all__ = [
    "BenchmarkSpec",
    "Scale",
    "ALIASES",
    "ALL_BENCHMARKS",
    "CORUN_PAIRS",
    "CorunPair",
    "DEFAULT_PAIR",
    "corun_name",
    "IRREGULAR",
    "REGULAR",
    "WORKLOADS",
    "build",
    "canonical_name",
    "get_spec",
    "normalize_benchmark",
]
