"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the workload suite and available prefetch engines.
``run BENCH``
    Simulate one benchmark under one engine; print the headline metrics
    (optionally append to a JSON result store, export windowed metric
    series with ``--metrics-out``, or print a host-side phase profile
    with ``--profile``).
``sweep``
    Run a (benchmark × engine) matrix and print the Figure 10-style
    normalized-IPC table; optionally persist every run.
``figures``
    Regenerate the paper's figures/tables into text files (the same
    content the pytest benchmark harness produces).
``trace BENCH``
    Export a Chrome trace-event / Perfetto timeline of one run
    (warp spans, stall intervals, prefetch lifetimes — see
    docs/observability.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.driver import run_benchmark, run_sweep, set_engine
from repro.analysis.metrics import geomean
from repro.analysis.report import format_percent, format_table
from repro.analysis.store import ResultStore
from repro.config import SchedulerKind, fermi_config, small_config
from repro.errors import (
    ConfigError,
    IncompleteRunError,
    SimulationHangError,
)
from repro.exec import (
    DEFAULT_CACHE_DIR,
    CellError,
    EventLog,
    ExecutionEngine,
    JSONLSink,
    ResultCache,
    TTYProgress,
)
from repro.guard.watchdog import format_snapshot
from repro.prefetch import PREFETCHERS
from repro.workloads import ALL_BENCHMARKS, WORKLOADS, Scale

#: Process exit codes for scripted callers (CI, Makefiles).
EXIT_OK = 0
EXIT_FAIL = 1          # validation checks failed / generic cell error
EXIT_CONFIG = 2        # invalid configuration (ConfigError)
EXIT_HANG = 3          # a simulation hung or hit its cycle limit
EXIT_SWEEP_FAILED = 4  # a resilient sweep finished with failed cells

ENGINE_CHOICES = ("none",) + PREFETCHERS
SCALES = {s.value: s for s in Scale}


def _config(name: str):
    if name == "fermi":
        return fermi_config()
    if name == "small":
        return small_config()
    raise argparse.ArgumentTypeError(f"unknown config preset {name!r}")


def _scheduler(name: Optional[str]) -> Optional[SchedulerKind]:
    if name is None:
        return None
    try:
        return SchedulerKind(name)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown scheduler {name!r}; choose from "
            f"{[k.value for k in SchedulerKind]}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="CAPS reproduction (Koo et al., IPDPS 2018)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    # Execution-engine flags shared by every simulating command.
    ex = argparse.ArgumentParser(add_help=False)
    ex.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the simulation matrix "
                         "(default: 1, serial)")
    ex.add_argument("--cache", type=pathlib.Path, nargs="?",
                    const=pathlib.Path(DEFAULT_CACHE_DIR), default=None,
                    metavar="DIR",
                    help="persist results to an on-disk cache "
                         f"(default dir: {DEFAULT_CACHE_DIR})")
    ex.add_argument("--events-log", type=pathlib.Path, default=None,
                    metavar="FILE",
                    help="append telemetry events to this JSONL file")
    ex.add_argument("--hang-cycles", type=int, default=None, metavar="N",
                    help="watchdog: declare a hang after N cycles with "
                         "no forward progress (0 disables; default from "
                         "the config preset)")
    ex.add_argument("--deep-checks", action="store_true",
                    help="run the per-cycle invariant audit (slow; "
                         "debugging aid)")

    sub.add_parser("list", help="show workloads and engines")

    run = sub.add_parser("run", help="simulate one benchmark",
                         parents=[ex])
    run.add_argument("bench", type=str.upper, choices=sorted(ALL_BENCHMARKS))
    run.add_argument("--engine", choices=ENGINE_CHOICES, default="caps")
    run.add_argument("--scale", choices=sorted(SCALES), default="small")
    run.add_argument("--config", type=_config, default="small")
    run.add_argument("--scheduler", type=_scheduler, default=None)
    run.add_argument("--store", type=pathlib.Path, default=None,
                     help="append the run to this JSON result store")
    run.add_argument("--metrics-out", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="export windowed metric series (per-SM IPC, "
                          "stall breakdown, queue depths, prefetch "
                          "events) to FILE; format by suffix: "
                          ".json/.jsonl/.csv")
    run.add_argument("--metrics-window", type=int, default=None, metavar="N",
                     help="sampling window in cycles for --metrics-out "
                          "(default: 512)")
    run.add_argument("--profile", action="store_true",
                     help="time simulator phases (host wall clock) and "
                          "print the breakdown")

    sweep = sub.add_parser("sweep", help="run a benchmark x engine matrix",
                           parents=[ex])
    sweep.add_argument("--benchmarks", type=str, default=",".join(ALL_BENCHMARKS),
                       help="comma-separated benchmark list")
    sweep.add_argument("--engines", type=str,
                       default=",".join(PREFETCHERS),
                       help="comma-separated engine list")
    sweep.add_argument("--scale", choices=sorted(SCALES), default="small")
    sweep.add_argument("--config", type=_config, default="small")
    sweep.add_argument("--store", type=pathlib.Path, default=None)
    sweep.add_argument("--resume", action="store_true",
                       help="resume a previous sweep of the same matrix: "
                            "skip journaled-complete cells (implies "
                            f"--cache {DEFAULT_CACHE_DIR})")

    figs = sub.add_parser("figures", help="regenerate paper figures",
                          parents=[ex])
    figs.add_argument("--out", type=pathlib.Path, default=pathlib.Path("results"))
    figs.add_argument("--scale", choices=sorted(SCALES), default="small")
    figs.add_argument("--benchmarks", type=str, default=None,
                      help="comma-separated subset (default: all 16)")
    figs.add_argument("--full-scale", action="store_true",
                      help="append the Figure 10 full-scale matrix "
                           "(adds ~25 minutes)")

    val = sub.add_parser(
        "validate",
        help="grade the paper's headline claims (regression gate)",
        parents=[ex],
    )
    val.add_argument("--benchmarks", type=str,
                     default="CNV,BPR,MM,HSP,KM,BFS")
    val.add_argument("--scale", choices=sorted(SCALES), default="small")

    tl = sub.add_parser(
        "timeline",
        help="render a sparkline execution timeline (burstiness view)",
    )
    tl.add_argument("bench", type=str.upper, choices=sorted(ALL_BENCHMARKS))
    tl.add_argument("--engine", choices=ENGINE_CHOICES, default="none")
    tl.add_argument("--scale", choices=sorted(SCALES), default="small")
    tl.add_argument("--interval", type=int, default=150)
    tl.add_argument("--width", type=int, default=72)

    tr = sub.add_parser(
        "trace",
        help="export a Chrome trace-event / Perfetto timeline of one run",
    )
    tr.add_argument("bench", type=str.upper, choices=sorted(ALL_BENCHMARKS))
    tr.add_argument("--engine", choices=ENGINE_CHOICES, default="caps")
    tr.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    tr.add_argument("--out", type=pathlib.Path, default=None, metavar="FILE",
                    help="output path (default: <bench>-<engine>.trace.json)")
    tr.add_argument("--limit", type=int, default=100_000, metavar="N",
                    help="cap on recorded events (default: 100000); "
                         "overflow is counted, not silently dropped")
    return p


def _guarded_config(args, base=None):
    """Apply the shared --hang-cycles/--deep-checks flags to a config."""
    cfg = base if base is not None else getattr(args, "config", None)
    if cfg is None:
        cfg = small_config()
    overrides = {}
    if getattr(args, "hang_cycles", None) is not None:
        overrides["hang_cycles"] = args.hang_cycles
    if getattr(args, "deep_checks", False):
        overrides["deep_checks"] = True
    return dataclasses.replace(cfg, **overrides) if overrides else cfg


def cmd_list(_args) -> int:
    rows = [
        (s.abbr, s.full_name, s.suite,
         "irregular" if s.irregular else "regular")
        for s in WORKLOADS.values()
    ]
    print(format_table(["abbr", "name", "suite", "class"], rows,
                       title="Workloads (paper Table IV)"))
    print(f"\nengines: none {' '.join(PREFETCHERS)}")
    print(f"schedulers: {' '.join(k.value for k in SchedulerKind)}")
    return 0


def cmd_run(args) -> int:
    cfg = _guarded_config(args)
    want_metrics = (args.metrics_out is not None
                    or args.metrics_window is not None)
    if want_metrics or args.profile:
        obs_overrides = {"metrics": want_metrics, "profile": args.profile}
        if args.metrics_window is not None:
            obs_overrides["window"] = args.metrics_window
        cfg = cfg.with_obs(**obs_overrides)
    base = run_benchmark(args.bench, "none", config=cfg,
                         scale=SCALES[args.scale])
    r = run_benchmark(args.bench, args.engine, config=cfg,
                      scale=SCALES[args.scale], scheduler=args.scheduler)
    print(format_table(
        ["metric", "baseline", args.engine],
        [
            ("IPC", f"{base.ipc:.3f}", f"{r.ipc:.3f}"),
            ("speedup", "1.000x", f"{r.ipc / base.ipc:.3f}x"),
            ("cycles", base.cycles, r.cycles),
            ("L1 hit rate", format_percent(base.l1_hit_rate),
             format_percent(r.l1_hit_rate)),
            ("coverage", "-", format_percent(r.coverage())),
            ("accuracy", "-", format_percent(r.accuracy())),
            ("prefetches issued", 0, r.prefetch_stats.issued),
            ("DRAM reads", base.dram_reads, r.dram_reads),
        ],
        title=f"{args.bench} @ {args.scale}",
    ))
    if args.metrics_out is not None:
        from repro.obs import write_metrics

        ts = r.extra["timeseries"]
        fmt = write_metrics(ts, args.metrics_out)
        print(f"\nwrote {len(ts['samples'])} windows of "
              f"{ts['window']}-cycle metrics ({fmt}) to {args.metrics_out}")
    if args.profile:
        from repro.obs import format_profile

        print(f"\nphase profile ({args.engine} run):")
        for line in format_profile(r.extra["profile"]):
            print(line)
    if args.store:
        store = (ResultStore.load(args.store) if args.store.exists()
                 else ResultStore())
        store.add_result(base, scale=args.scale)
        store.add_result(r, scale=args.scale)
        store.save(args.store)
        print(f"\nsaved to {args.store} ({len(store)} records)")
    return 0


def cmd_sweep(args) -> int:
    benches = [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()]
    engines = [e.strip() for e in args.engines.split(",")
               if e.strip() and e.strip() != "none"]
    scale = SCALES[args.scale]
    # One batched, crash-safe sweep: the engine deduplicates cells, runs
    # them in parallel under --jobs, journals each completion, and
    # records failures instead of aborting the batch.
    report = run_sweep(benches, ("none",) + tuple(engines),
                       config=_guarded_config(args), scale=scale,
                       resume=args.resume)
    matrix = report.results
    store = ResultStore()
    for result in matrix.values():
        store.add_result(result, scale=args.scale)
    rows: List = []
    speedups = {e: [] for e in engines}
    for b in benches:
        base = matrix.get((b, "none"))
        row: List = [b]
        for e in engines:
            r = matrix.get((b, e))
            if base is None or r is None or base.ipc <= 0:
                row.append("-")
            else:
                sp = r.ipc / base.ipc
                speedups[e].append(sp)
                row.append(sp)
        rows.append(tuple(row))
    rows.append(("geomean",
                 *[geomean(speedups[e]) if speedups[e] else "-"
                   for e in engines]))
    print(format_table(["bench"] + engines, rows,
                       title="Normalized IPC over the no-prefetch baseline"))
    if args.store:
        store.save(args.store)
        print(f"\nsaved to {args.store} ({len(store)} records)")
    if report.skipped_permanent:
        print(f"\nskipped {report.skipped_permanent} cell(s) journaled as "
              f"permanently failed (journal: {report.journal_path})")
    if report.failures:
        print(f"\n{len(report.failures)} cell(s) FAILED:", file=sys.stderr)
        for (b, e), failure in sorted(report.failures.items()):
            print(f"  {b}/{e}: {failure.error!r} "
                  f"[{failure.kind.value}, {failure.attempts} attempt(s)]",
                  file=sys.stderr)
        for bundle in report.bundles:
            print(f"  diagnostic bundle: {bundle}", file=sys.stderr)
        print(f"  journal: {report.journal_path} "
              f"(re-run with --resume to retry)", file=sys.stderr)
        return EXIT_SWEEP_FAILED
    return EXIT_OK


def cmd_validate(args) -> int:
    from repro.analysis.validate import all_passed, validate_shape

    benches = [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()]
    checks = validate_shape(benchmarks=benches, scale=SCALES[args.scale],
                            config=_guarded_config(args))
    for c in checks:
        print(c)
    ok = all_passed(checks)
    print("\nshape:", "REPRODUCED" if ok else "BROKEN")
    return 0 if ok else 1


def cmd_timeline(args) -> int:
    from repro.analysis.timeline import TimelineMonitor, render_timeline
    from repro.prefetch.factory import default_scheduler_for
    from repro.sim.gpu import simulate
    from repro.workloads import build
    from repro.prefetch import make_prefetcher as _mk

    cfg = small_config()
    factory = None
    if args.engine != "none":
        cfg = cfg.with_scheduler(default_scheduler_for(args.engine))
        factory = _mk(args.engine)
    monitor = TimelineMonitor(interval=args.interval)
    result = simulate(build(args.bench, SCALES[args.scale]), cfg, factory,
                      monitor=monitor)
    print(f"{args.bench} / {args.engine}: IPC {result.ipc:.3f}, "
          f"DRAM burstiness {monitor.burstiness():.2f}")
    print(render_timeline(monitor, width=args.width))
    return 0


def cmd_trace(args) -> int:
    """Run one benchmark with the trace recorder on and export the
    Chrome trace-event JSON (simulated directly, bypassing the result
    cache — trace payloads are bulky and single-use)."""
    import json

    from repro.obs import validate_chrome_trace
    from repro.prefetch.factory import default_scheduler_for
    from repro.sim.gpu import simulate
    from repro.workloads import build
    from repro.prefetch import make_prefetcher as _mk

    cfg = small_config().with_obs(trace=True, trace_limit=args.limit)
    factory = None
    if args.engine != "none":
        cfg = cfg.with_scheduler(default_scheduler_for(args.engine))
        factory = _mk(args.engine)
    result = simulate(build(args.bench, SCALES[args.scale]), cfg, factory)
    trace = result.extra["trace"]
    problems = validate_chrome_trace(trace)
    if problems:  # pragma: no cover - schema guard
        print(f"internal error: malformed trace ({problems[0]})",
              file=sys.stderr)
        return EXIT_FAIL
    out = args.out or pathlib.Path(
        f"{args.bench.lower()}-{args.engine}.trace.json"
    )
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    dropped = trace["metadata"]["dropped_events"]
    print(f"{args.bench} / {args.engine}: {result.cycles} cycles, "
          f"IPC {result.ipc:.3f}")
    print(f"wrote {len(trace['traceEvents'])} events to {out}"
          + (f" ({dropped} dropped over --limit)" if dropped else ""))
    print("open in https://ui.perfetto.dev or about://tracing")
    return EXIT_OK


def cmd_figures(args) -> int:
    from repro.analysis.experiments_md import generate_experiments_md

    args.out.mkdir(parents=True, exist_ok=True)
    kwargs = {}
    if args.benchmarks:
        subset = tuple(
            b.strip().upper() for b in args.benchmarks.split(",") if b.strip()
        )
        kwargs["benchmarks"] = subset
        kwargs["fig11_benchmarks"] = subset[:2]
    path = generate_experiments_md(
        args.out / "EXPERIMENTS.md",
        scale=SCALES[args.scale],
        include_full_scale=args.full_scale,
        **kwargs,
    )
    print(f"wrote {path}")
    return 0


def _install_engine(args) -> None:
    """Configure the process-wide execution engine from CLI flags.

    With the default flags (serial, no persistence, no telemetry sink)
    the already-installed engine is kept, so repeated in-process CLI
    invocations share its memo.
    """
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache", None)
    events_log = getattr(args, "events_log", None)
    if getattr(args, "resume", False) and cache_dir is None:
        # Resume needs the persistent cache to serve journaled-complete
        # cells without re-simulation.
        cache_dir = pathlib.Path(DEFAULT_CACHE_DIR)
    if jobs == 1 and cache_dir is None and events_log is None:
        return
    if jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    events = EventLog()
    if events_log is not None:
        events.subscribe(JSONLSink(events_log))
    if sys.stderr.isatty():
        events.subscribe(TTYProgress())
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    set_engine(ExecutionEngine(jobs=jobs, cache=cache, events=events))


def _report_hang(exc: BaseException) -> None:
    """Print a human-readable summary of a hang/incomplete-run error."""
    print(f"\nerror: {exc}", file=sys.stderr)
    snapshot = getattr(exc, "snapshot", None)
    if not snapshot and getattr(exc, "result", None) is not None:
        snapshot = exc.result.extra.get("hang_snapshot")
    if snapshot:
        print(format_snapshot(snapshot), file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        _install_engine(args)
        return {
            "list": cmd_list,
            "run": cmd_run,
            "sweep": cmd_sweep,
            "figures": cmd_figures,
            "validate": cmd_validate,
            "timeline": cmd_timeline,
            "trace": cmd_trace,
        }[args.command](args)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except (SimulationHangError, IncompleteRunError) as exc:
        _report_hang(exc)
        return EXIT_HANG
    except CellError as exc:
        # Fail-fast batch paths (run_matrix under validate/figures) wrap
        # the worker's exception; unwrap so hangs still get a snapshot.
        cause = exc.cause
        if isinstance(cause, (SimulationHangError, IncompleteRunError)):
            _report_hang(cause)
            return EXIT_HANG
        print(f"\nerror: {exc}", file=sys.stderr)
        return EXIT_FAIL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
