"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the workload suite and available prefetch engines.
``run BENCH``
    Simulate one benchmark under one engine; print the headline metrics
    (optionally append to a JSON result store, export windowed metric
    series with ``--metrics-out``, or print a host-side phase profile
    with ``--profile``).
``sweep``
    Run a (benchmark × engine) matrix and print the Figure 10-style
    normalized-IPC table; optionally persist every run.
``figures``
    Regenerate the paper's figures/tables into text files (the same
    content the pytest benchmark harness produces).
``trace BENCH``
    Export a Chrome trace-event / Perfetto timeline of one run
    (warp spans, stall intervals, prefetch lifetimes — see
    docs/observability.md).
``serve``
    Run the long-lived simulation service: accepts ``simulate`` /
    ``stats`` / ``ping`` requests over a Unix or TCP socket, answers
    from the tiered cache or batches into the execution engine, sheds
    load explicitly when full and drains gracefully on SIGTERM (see
    docs/serving.md).
``request [BENCH]``
    Issue one request to a running server (``--stats`` / ``--ping``
    for introspection and liveness); transient failures are retried
    with backoff (``--retries``, default 3 attempts) before the
    command gives up with exit code 5.
``fleet``
    Run the fault-tolerant serve fleet: N supervised backend
    processes behind a consistent-hashing router with per-backend
    circuit breakers and a read-only degraded disk fallback (see
    docs/fleet.md).  ``--chaos-*`` flags arm the seeded fault
    injection used by the chaos suite.
``cache {stats,gc}``
    Maintain the on-disk result cache: usage summary, and garbage
    collection by age (``--older-than``) and/or size (``--max-bytes``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.driver import run_benchmark, run_sweep, set_engine
from repro.analysis.metrics import geomean
from repro.analysis.report import format_percent, format_table
from repro.analysis.store import ResultStore
from repro.config import (
    ALLOC_POLICIES,
    SchedulerKind,
    fermi_config,
    small_config,
)
from repro.errors import (
    ConfigError,
    IncompleteRunError,
    SimulationHangError,
)
from repro.exec import (
    DEFAULT_CACHE_DIR,
    CellError,
    EventLog,
    ExecutionEngine,
    JSONLSink,
    ResultCache,
    TTYProgress,
)
from repro.guard.watchdog import format_snapshot
from repro.prefetch import PREFETCHERS
from repro.workloads import (
    ALL_BENCHMARKS,
    WORKLOADS,
    Scale,
    canonical_name,
    normalize_benchmark,
)

#: Process exit codes for scripted callers (CI, Makefiles).
EXIT_OK = 0
EXIT_FAIL = 1          # validation checks failed / generic cell error
EXIT_CONFIG = 2        # invalid configuration (ConfigError)
EXIT_HANG = 3          # a simulation hung or hit its cycle limit
EXIT_SWEEP_FAILED = 4  # a resilient sweep finished with failed cells
EXIT_UNAVAILABLE = 5   # server unreachable / overloaded / draining

ENGINE_CHOICES = ("none",) + PREFETCHERS
SCALES = {s.value: s for s in Scale}


def _config(name: str):
    if name == "fermi":
        return fermi_config()
    if name == "small":
        return small_config()
    raise argparse.ArgumentTypeError(f"unknown config preset {name!r}")


_SIZE_SUFFIXES = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
_DURATION_SUFFIXES = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def _size(text: str) -> int:
    """Parse a byte size: plain int or K/M/G-suffixed (``500M``)."""
    raw = text.strip()
    factor = 1
    if raw and raw[-1].upper() in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (use e.g. 1048576, 500M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0 (got {text!r})")
    return value


def _duration(text: str) -> float:
    """Parse a duration: plain seconds or s/m/h/d-suffixed (``7d``)."""
    raw = text.strip()
    factor = 1
    if raw and raw[-1].lower() in _DURATION_SUFFIXES:
        factor = _DURATION_SUFFIXES[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = float(raw) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r} (use e.g. 90, 30s, 12h, 7d)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"duration must be >= 0 (got {text!r})")
    return value


def _override(text: str):
    """Parse one ``--override dotted.field=value`` into (path, value)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like field=value or "
            "section.field=value")
    path, _, raw = text.partition("=")
    parts = [p for p in path.strip().split(".") if p]
    if not parts:
        raise argparse.ArgumentTypeError(f"override {text!r} names no field")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare strings (e.g. scheduler names) pass through
    return parts, value


def _overrides_dict(pairs) -> dict:
    """Fold parsed ``--override`` pairs into the nested wire dict."""
    out: dict = {}
    for parts, value in pairs or ():
        node = out
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise SystemExit(
                    f"--override path {'.'.join(parts)} conflicts with an "
                    "earlier scalar override")
        node[parts[-1]] = value
    return out


def _bench(name: str) -> str:
    """Canonical benchmark name for a CLI argument (aliases accepted)."""
    canonical = canonical_name(name)
    if canonical not in ALL_BENCHMARKS:
        raise argparse.ArgumentTypeError(
            f"unknown benchmark {name!r}; choose from "
            f"{', '.join(sorted(ALL_BENCHMARKS))}"
        )
    return canonical


def _scheduler(name: Optional[str]) -> Optional[SchedulerKind]:
    if name is None:
        return None
    try:
        return SchedulerKind(name)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown scheduler {name!r}; choose from "
            f"{[k.value for k in SchedulerKind]}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="CAPS reproduction (Koo et al., IPDPS 2018)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    # Execution-engine flags shared by every simulating command.
    ex = argparse.ArgumentParser(add_help=False)
    ex.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the simulation matrix "
                         "(default: 1, serial)")
    ex.add_argument("--cache", type=pathlib.Path, nargs="?",
                    const=pathlib.Path(DEFAULT_CACHE_DIR), default=None,
                    metavar="DIR",
                    help="persist results to an on-disk cache "
                         f"(default dir: {DEFAULT_CACHE_DIR})")
    ex.add_argument("--events-log", type=pathlib.Path, default=None,
                    metavar="FILE",
                    help="append telemetry events to this JSONL file")
    ex.add_argument("--hang-cycles", type=int, default=None, metavar="N",
                    help="watchdog: declare a hang after N cycles with "
                         "no forward progress (0 disables; default from "
                         "the config preset)")
    ex.add_argument("--deep-checks", action="store_true",
                    help="run the per-cycle invariant audit (slow; "
                         "debugging aid)")

    sub.add_parser("list", help="show workloads and engines")

    run = sub.add_parser("run", help="simulate one benchmark",
                         parents=[ex])
    run.add_argument("bench", type=_bench, nargs="?", default=None,
                     help="benchmark abbreviation (omit when using "
                          "--co-run)")
    run.add_argument("--co-run", type=str, default=None, metavar="A,B",
                     help="co-schedule two or more kernels on one GPU "
                          "(comma-separated benchmarks, e.g. MRQ,SGEMM); "
                          "prints per-kernel metrics plus ANTT/STP "
                          "against solo runs")
    run.add_argument("--alloc-policy", choices=ALLOC_POLICIES,
                     default=None,
                     help="inter-kernel CTA allocation policy for "
                          "--co-run: spatial (fixed SM partition), "
                          "leftover (fill idle slots), preempt "
                          "(CTA-boundary preemptive SRTF; default: "
                          "the config preset's policy)")
    run.add_argument("--engine", choices=ENGINE_CHOICES, default="caps")
    run.add_argument("--scale", choices=sorted(SCALES), default="small")
    run.add_argument("--config", type=_config, default="small")
    run.add_argument("--scheduler", type=_scheduler, default=None)
    run.add_argument("--store", type=pathlib.Path, default=None,
                     help="append the run to this JSON result store")
    run.add_argument("--metrics-out", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="export windowed metric series (per-SM IPC, "
                          "stall breakdown, queue depths, prefetch "
                          "events) to FILE; format by suffix: "
                          ".json/.jsonl/.csv")
    run.add_argument("--metrics-window", type=int, default=None, metavar="N",
                     help="sampling window in cycles for --metrics-out "
                          "(default: 512)")
    run.add_argument("--profile", action="store_true",
                     help="time simulator phases (host wall clock) and "
                          "print the breakdown")

    sweep = sub.add_parser("sweep", help="run a benchmark x engine matrix",
                           parents=[ex])
    sweep.add_argument("--benchmarks", type=str, default=",".join(ALL_BENCHMARKS),
                       help="comma-separated benchmark list")
    sweep.add_argument("--engines", type=str,
                       default=",".join(PREFETCHERS),
                       help="comma-separated engine list")
    sweep.add_argument("--scale", choices=sorted(SCALES), default="small")
    sweep.add_argument("--config", type=_config, default="small")
    sweep.add_argument("--store", type=pathlib.Path, default=None)
    sweep.add_argument("--resume", action="store_true",
                       help="resume a previous sweep of the same matrix: "
                            "skip journaled-complete cells (implies "
                            f"--cache {DEFAULT_CACHE_DIR})")

    figs = sub.add_parser("figures", help="regenerate paper figures",
                          parents=[ex])
    figs.add_argument("--out", type=pathlib.Path, default=pathlib.Path("results"))
    figs.add_argument("--scale", choices=sorted(SCALES), default="small")
    figs.add_argument("--benchmarks", type=str, default=None,
                      help="comma-separated subset (default: all 16)")
    figs.add_argument("--full-scale", action="store_true",
                      help="append the Figure 10 full-scale matrix "
                           "(adds ~25 minutes)")

    val = sub.add_parser(
        "validate",
        help="grade the paper's headline claims (regression gate)",
        parents=[ex],
    )
    val.add_argument("--benchmarks", type=str,
                     default="CNV,BPR,MM,HSP,KM,BFS")
    val.add_argument("--scale", choices=sorted(SCALES), default="small")

    tl = sub.add_parser(
        "timeline",
        help="render a sparkline execution timeline (burstiness view)",
    )
    tl.add_argument("bench", type=str.upper, choices=sorted(ALL_BENCHMARKS))
    tl.add_argument("--engine", choices=ENGINE_CHOICES, default="none")
    tl.add_argument("--scale", choices=sorted(SCALES), default="small")
    tl.add_argument("--interval", type=int, default=150)
    tl.add_argument("--width", type=int, default=72)

    tr = sub.add_parser(
        "trace",
        help="export a Chrome trace-event / Perfetto timeline of one run",
    )
    tr.add_argument("bench", type=str.upper, choices=sorted(ALL_BENCHMARKS))
    tr.add_argument("--engine", choices=ENGINE_CHOICES, default="caps")
    tr.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    tr.add_argument("--out", type=pathlib.Path, default=None, metavar="FILE",
                    help="output path (default: <bench>-<engine>.trace.json)")
    tr.add_argument("--limit", type=int, default=100_000, metavar="N",
                    help="cap on recorded events (default: 100000); "
                         "overflow is counted, not silently dropped")

    # Shared endpoint flags for the serving pair.
    ep = argparse.ArgumentParser(add_help=False)
    ep.add_argument("--socket", type=pathlib.Path, default=None,
                    metavar="PATH",
                    help="Unix domain socket path (preferred over TCP "
                         "when given)")
    ep.add_argument("--host", type=str, default=None,
                    help="TCP bind/connect address (default: 127.0.0.1)")
    ep.add_argument("--port", type=int, default=None,
                    help="TCP port (default: 8642; 0 binds an ephemeral "
                         "port on serve)")

    srv = sub.add_parser(
        "serve",
        help="run the long-lived simulation service (see docs/serving.md)",
        parents=[ep],
    )
    srv.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for dispatched batches "
                          "(default: 1, in-thread)")
    srv.add_argument("--cache", type=pathlib.Path,
                     default=pathlib.Path(DEFAULT_CACHE_DIR), metavar="DIR",
                     help="persistent result-cache directory "
                          f"(default: {DEFAULT_CACHE_DIR})")
    srv.add_argument("--no-disk-cache", action="store_true",
                     help="serve from the in-memory tiers only")
    srv.add_argument("--events-log", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="append engine telemetry events to this JSONL "
                          "file (flushed per event; survives SIGKILL)")
    srv.add_argument("--queue-limit", type=int, default=64, metavar="N",
                     help="admitted-but-unresolved cell bound; past it "
                          "requests are shed with 'overloaded' "
                          "(default: 64)")
    srv.add_argument("--batch-window", type=float, default=0.02,
                     metavar="SECONDS",
                     help="how long the dispatcher coalesces arriving "
                          "requests into one batch (default: 0.02)")
    srv.add_argument("--batch-max", type=int, default=32, metavar="N",
                     help="max cells per dispatched batch (default: 32)")
    srv.add_argument("--default-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="deadline applied to requests that carry none "
                          "(default: wait indefinitely)")
    srv.add_argument("--memcache-entries", type=int, default=256, metavar="N",
                     help="in-memory result-cache entry cap (default: 256)")
    srv.add_argument("--memcache-bytes", type=_size, default=64 * 1024 * 1024,
                     metavar="SIZE",
                     help="in-memory result-cache byte cap "
                          "(default: 64M; accepts K/M/G suffixes)")
    srv.add_argument("--evict-policy",
                     choices=("lru", "lfu", "fifo", "mru", "filo"),
                     default="lru",
                     help="memcache eviction policy (default: lru)")
    srv.add_argument("--no-predict", action="store_true",
                     help="disable sweep prediction and speculative "
                          "execution of the forecast next cells")
    srv.add_argument("--predict-min-run", type=int, default=3, metavar="N",
                     help="consecutive same-stride steps before the "
                          "predictor speculates (default: 3)")
    srv.add_argument("--predict-depth", type=int, default=2, metavar="N",
                     help="future sweep cells speculated per confirmed "
                          "step (default: 2)")
    srv.add_argument("--speculate-max", type=int, default=4, metavar="N",
                     help="outstanding speculative cells bound; beyond it "
                          "predictions are dropped (default: 4)")

    rq = sub.add_parser(
        "request",
        help="issue one request to a running simulation server",
        parents=[ep],
    )
    rq.add_argument("bench", type=str.upper, nargs="?", default=None,
                    help="benchmark to simulate (omit with --stats/--ping); "
                         "validated server-side against the workload suite")
    rq.add_argument("--engine", choices=ENGINE_CHOICES, default="caps")
    rq.add_argument("--scale", choices=sorted(SCALES), default="small")
    rq.add_argument("--preset", choices=("small", "fermi", "test"),
                    default="small",
                    help="server-side GPUConfig preset (default: small)")
    rq.add_argument("--override", type=_override, action="append",
                    default=None, metavar="FIELD=VALUE",
                    help="GPUConfig override, dotted for nested fields "
                         "(e.g. --override prefetch.nlp_degree=2); "
                         "repeatable")
    rq.add_argument("--scheduler", type=_scheduler, default=None,
                    help="warp scheduler (default: the engine's pairing)")
    rq.add_argument("--priority", choices=("interactive", "sweep"),
                    default="interactive")
    rq.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="per-request deadline enforced by the server")
    rq.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                    help="client-side socket timeout")
    rq.add_argument("--retries", type=int, default=3, metavar="N",
                    help="total attempts for transient failures "
                         "(connection refused/reset, overloaded, "
                         "degraded, deadline); backoff between "
                         "attempts, exit 5 only after the last one "
                         "(default: 3; 1 disables retries)")
    rq.add_argument("--json", action="store_true",
                    help="print the raw response payload as JSON")
    rq.add_argument("--stats", action="store_true",
                    help="fetch the server's introspection snapshot "
                         "(versioned payload, stats_schema v3: counters "
                         "plus speculation/predictor/tiers blocks, or "
                         "the router's fleet/health payload; see "
                         "docs/serving.md and docs/fleet.md)")
    rq.add_argument("--ping", action="store_true",
                    help="liveness probe")

    fl = sub.add_parser(
        "fleet",
        help="run the fault-tolerant multi-backend serve fleet "
             "(see docs/fleet.md)",
        parents=[ep],
    )
    fl.add_argument("--backends", type=int, default=3, metavar="N",
                    help="supervised backend processes (default: 3)")
    fl.add_argument("--runtime-dir", type=pathlib.Path, default=None,
                    metavar="DIR",
                    help="directory for backend Unix sockets (default: "
                         "a fresh temporary directory)")
    fl.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes per backend (default: 1)")
    fl.add_argument("--cache", type=pathlib.Path,
                    default=pathlib.Path(DEFAULT_CACHE_DIR), metavar="DIR",
                    help="shared persistent result cache; also the "
                         "router's read-only degraded fallback "
                         f"(default: {DEFAULT_CACHE_DIR})")
    fl.add_argument("--no-disk-cache", action="store_true",
                    help="no persistent cache (disables the degraded "
                         "disk fallback too)")
    fl.add_argument("--restart-budget", type=int, default=None, metavar="N",
                    help="restarts per backend before the supervisor "
                         "gives up on it (default: 3)")
    fl.add_argument("--probe-interval", type=float, default=None,
                    metavar="SECONDS",
                    help="active health-probe cadence (default: 0.25)")
    fl.add_argument("--forward-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="bound on one forwarded request "
                         "(default: 60; detects blackholed backends)")
    fl.add_argument("--failure-threshold", type=int, default=None,
                    metavar="N",
                    help="consecutive failures that open a backend's "
                         "circuit breaker (default: 3)")
    fl.add_argument("--reset-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="how long an open breaker waits before "
                         "half-open trial requests (default: 1.0)")
    chaos = fl.add_argument_group(
        "chaos", "seeded serve-tier fault injection (tests/CI only)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-plan seed (default: 0)")
    chaos.add_argument("--chaos-kill-backend", type=int, default=-1,
                       metavar="INDEX",
                       help="backend index that exits mid-flight "
                            "(default: -1, none)")
    chaos.add_argument("--chaos-kill-after", type=int, default=0,
                       metavar="N",
                       help="simulate requests the doomed backend "
                            "answers before dying (default: 0)")
    chaos.add_argument("--chaos-slow-rate", type=float, default=0.0,
                       metavar="P", help="fraction of requests delayed")
    chaos.add_argument("--chaos-slow-s", type=float, default=0.05,
                       metavar="SECONDS", help="injected delay length")
    chaos.add_argument("--chaos-blackhole-rate", type=float, default=0.0,
                       metavar="P",
                       help="fraction of requests never answered")
    chaos.add_argument("--chaos-torn-rate", type=float, default=0.0,
                       metavar="P",
                       help="fraction of responses cut mid-line")

    ca = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the on-disk result cache",
    )
    ca.add_argument("action", choices=("stats", "gc"))
    ca.add_argument("--cache", type=pathlib.Path,
                    default=pathlib.Path(DEFAULT_CACHE_DIR), metavar="DIR",
                    help=f"cache directory (default: {DEFAULT_CACHE_DIR})")
    ca.add_argument("--max-bytes", type=_size, default=None, metavar="SIZE",
                    help="gc: evict oldest entries until the cache fits "
                         "this budget (accepts K/M/G suffixes)")
    ca.add_argument("--older-than", type=_duration, default=None,
                    metavar="DURATION",
                    help="gc: evict entries older than this (accepts "
                         "s/m/h/d suffixes, e.g. 7d)")
    ca.add_argument("--json", action="store_true",
                    help="print machine-readable JSON")
    return p


def _guarded_config(args, base=None):
    """Apply the shared --hang-cycles/--deep-checks flags to a config."""
    cfg = base if base is not None else getattr(args, "config", None)
    if cfg is None:
        cfg = small_config()
    overrides = {}
    if getattr(args, "hang_cycles", None) is not None:
        overrides["hang_cycles"] = args.hang_cycles
    if getattr(args, "deep_checks", False):
        overrides["deep_checks"] = True
    return dataclasses.replace(cfg, **overrides) if overrides else cfg


def cmd_list(_args) -> int:
    rows = [
        (s.abbr, s.full_name, s.suite,
         "irregular" if s.irregular else "regular")
        for s in WORKLOADS.values()
    ]
    print(format_table(["abbr", "name", "suite", "class"], rows,
                       title="Workloads (paper Table IV)"))
    print(f"\nengines: none {' '.join(PREFETCHERS)}")
    print(f"schedulers: {' '.join(k.value for k in SchedulerKind)}")
    return 0


def _run_corun(args, cfg) -> int:
    """``repro run --co-run A,B``: one concurrent-kernel simulation.

    Runs the co-schedule plus one solo run per kernel (same engine and
    config preset), prints the per-kernel sub-records and the ANTT/STP
    interference metrics — see docs/metrics-glossary.md.
    """
    from repro.sim.multi import antt_stp

    parts = [b.strip() for b in args.co_run.split(",") if b.strip()]
    if len(parts) < 2:
        raise SystemExit(
            "repro run --co-run: name at least two comma-separated "
            f"benchmarks (got {args.co_run!r})")
    try:
        pair = normalize_benchmark("+".join(parts))
    except KeyError as exc:
        raise SystemExit(f"repro run --co-run: {exc.args[0]}") from None
    if args.alloc_policy is not None:
        cfg = cfg.with_multi(alloc_policy=args.alloc_policy)
    scale = SCALES[args.scale]
    co = run_benchmark(pair, args.engine, config=cfg, scale=scale,
                       scheduler=args.scheduler)
    solos = [run_benchmark(b, args.engine, config=cfg, scale=scale,
                           scheduler=args.scheduler)
             for b in pair.split("+")]
    kernels = co.extra["kernels"]
    t = antt_stp([k["finish_cycle"] for k in kernels],
                 [s.cycles for s in solos])
    rows = []
    for rec, solo in zip(kernels, solos):
        rows.append((
            rec["name"],
            rec["finish_cycle"],
            solo.cycles,
            f"{rec['finish_cycle'] / solo.cycles:.3f}x",
            f"{rec['ipc']:.3f}",
            format_percent(rec["l1_hit_rate"]),
            format_percent(rec["coverage"]),
            format_percent(rec["stall_fraction"]),
        ))
    print(format_table(
        ["kernel", "co-run cycles", "solo cycles", "slowdown", "IPC",
         "L1 hit", "coverage", "stall"],
        rows,
        title=(f"{pair} @ {args.scale} via {args.engine} "
               f"[{cfg.multi.alloc_policy}]"),
    ))
    print(f"\ntotal cycles {co.cycles}  "
          f"ANTT {t['antt']:.3f}  STP {t['stp']:.3f}  "
          f"(policy: {cfg.multi.alloc_policy})")
    if args.store:
        store = (ResultStore.load(args.store) if args.store.exists()
                 else ResultStore())
        store.add_result(co, scale=args.scale)
        store.save(args.store)
        print(f"\nsaved to {args.store} ({len(store)} records)")
    return EXIT_OK


def cmd_run(args) -> int:
    cfg = _guarded_config(args)
    if args.co_run is not None:
        if args.bench is not None:
            raise SystemExit(
                "repro run: give either a positional benchmark or "
                "--co-run, not both")
        return _run_corun(args, cfg)
    if args.bench is None:
        raise SystemExit(
            "repro run: name a benchmark or pass --co-run A,B")
    if args.bench not in ALL_BENCHMARKS:
        raise SystemExit(
            f"repro run: unknown benchmark {args.bench!r} "
            f"(choose from {', '.join(sorted(ALL_BENCHMARKS))})")
    want_metrics = (args.metrics_out is not None
                    or args.metrics_window is not None)
    if want_metrics or args.profile:
        obs_overrides = {"metrics": want_metrics, "profile": args.profile}
        if args.metrics_window is not None:
            obs_overrides["window"] = args.metrics_window
        cfg = cfg.with_obs(**obs_overrides)
    base = run_benchmark(args.bench, "none", config=cfg,
                         scale=SCALES[args.scale])
    r = run_benchmark(args.bench, args.engine, config=cfg,
                      scale=SCALES[args.scale], scheduler=args.scheduler)
    print(format_table(
        ["metric", "baseline", args.engine],
        [
            ("IPC", f"{base.ipc:.3f}", f"{r.ipc:.3f}"),
            ("speedup", "1.000x", f"{r.ipc / base.ipc:.3f}x"),
            ("cycles", base.cycles, r.cycles),
            ("L1 hit rate", format_percent(base.l1_hit_rate),
             format_percent(r.l1_hit_rate)),
            ("coverage", "-", format_percent(r.coverage())),
            ("accuracy", "-", format_percent(r.accuracy())),
            ("prefetches issued", 0, r.prefetch_stats.issued),
            ("DRAM reads", base.dram_reads, r.dram_reads),
        ],
        title=f"{args.bench} @ {args.scale}",
    ))
    if args.metrics_out is not None:
        from repro.obs import write_metrics

        ts = r.extra["timeseries"]
        fmt = write_metrics(ts, args.metrics_out)
        print(f"\nwrote {len(ts['samples'])} windows of "
              f"{ts['window']}-cycle metrics ({fmt}) to {args.metrics_out}")
    if args.profile:
        from repro.obs import format_profile

        print(f"\nphase profile ({args.engine} run):")
        for line in format_profile(r.extra["profile"]):
            print(line)
    if args.store:
        store = (ResultStore.load(args.store) if args.store.exists()
                 else ResultStore())
        store.add_result(base, scale=args.scale)
        store.add_result(r, scale=args.scale)
        store.save(args.store)
        print(f"\nsaved to {args.store} ({len(store)} records)")
    return 0


def cmd_sweep(args) -> int:
    benches = [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()]
    engines = [e.strip() for e in args.engines.split(",")
               if e.strip() and e.strip() != "none"]
    scale = SCALES[args.scale]
    # One batched, crash-safe sweep: the engine deduplicates cells, runs
    # them in parallel under --jobs, journals each completion, and
    # records failures instead of aborting the batch.
    report = run_sweep(benches, ("none",) + tuple(engines),
                       config=_guarded_config(args), scale=scale,
                       resume=args.resume)
    matrix = report.results
    store = ResultStore()
    for result in matrix.values():
        store.add_result(result, scale=args.scale)
    rows: List = []
    speedups = {e: [] for e in engines}
    for b in benches:
        base = matrix.get((b, "none"))
        row: List = [b]
        for e in engines:
            r = matrix.get((b, e))
            if base is None or r is None or base.ipc <= 0:
                row.append("-")
            else:
                sp = r.ipc / base.ipc
                speedups[e].append(sp)
                row.append(sp)
        rows.append(tuple(row))
    rows.append(("geomean",
                 *[geomean(speedups[e]) if speedups[e] else "-"
                   for e in engines]))
    print(format_table(["bench"] + engines, rows,
                       title="Normalized IPC over the no-prefetch baseline"))
    if args.store:
        store.save(args.store)
        print(f"\nsaved to {args.store} ({len(store)} records)")
    if report.skipped_permanent:
        print(f"\nskipped {report.skipped_permanent} cell(s) journaled as "
              f"permanently failed (journal: {report.journal_path})")
    if report.failures:
        print(f"\n{len(report.failures)} cell(s) FAILED:", file=sys.stderr)
        for (b, e), failure in sorted(report.failures.items()):
            print(f"  {b}/{e}: {failure.error!r} "
                  f"[{failure.kind.value}, {failure.attempts} attempt(s)]",
                  file=sys.stderr)
        for bundle in report.bundles:
            print(f"  diagnostic bundle: {bundle}", file=sys.stderr)
        print(f"  journal: {report.journal_path} "
              f"(re-run with --resume to retry)", file=sys.stderr)
        return EXIT_SWEEP_FAILED
    return EXIT_OK


def cmd_validate(args) -> int:
    from repro.analysis.validate import all_passed, validate_shape

    benches = [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()]
    checks = validate_shape(benchmarks=benches, scale=SCALES[args.scale],
                            config=_guarded_config(args))
    for c in checks:
        print(c)
    ok = all_passed(checks)
    print("\nshape:", "REPRODUCED" if ok else "BROKEN")
    return 0 if ok else 1


def cmd_timeline(args) -> int:
    from repro.analysis.timeline import TimelineMonitor, render_timeline
    from repro.prefetch.factory import default_scheduler_for
    from repro.sim.gpu import simulate
    from repro.workloads import build
    from repro.prefetch import make_prefetcher as _mk

    cfg = small_config()
    factory = None
    if args.engine != "none":
        cfg = cfg.with_scheduler(default_scheduler_for(args.engine))
        factory = _mk(args.engine)
    monitor = TimelineMonitor(interval=args.interval)
    result = simulate(build(args.bench, SCALES[args.scale]), cfg, factory,
                      monitor=monitor)
    print(f"{args.bench} / {args.engine}: IPC {result.ipc:.3f}, "
          f"DRAM burstiness {monitor.burstiness():.2f}")
    print(render_timeline(monitor, width=args.width))
    return 0


def cmd_trace(args) -> int:
    """Run one benchmark with the trace recorder on and export the
    Chrome trace-event JSON (simulated directly, bypassing the result
    cache — trace payloads are bulky and single-use)."""
    from repro.obs import validate_chrome_trace
    from repro.prefetch.factory import default_scheduler_for
    from repro.sim.gpu import simulate
    from repro.workloads import build
    from repro.prefetch import make_prefetcher as _mk

    cfg = small_config().with_obs(trace=True, trace_limit=args.limit)
    factory = None
    if args.engine != "none":
        cfg = cfg.with_scheduler(default_scheduler_for(args.engine))
        factory = _mk(args.engine)
    result = simulate(build(args.bench, SCALES[args.scale]), cfg, factory)
    trace = result.extra["trace"]
    problems = validate_chrome_trace(trace)
    if problems:  # pragma: no cover - schema guard
        print(f"internal error: malformed trace ({problems[0]})",
              file=sys.stderr)
        return EXIT_FAIL
    out = args.out or pathlib.Path(
        f"{args.bench.lower()}-{args.engine}.trace.json"
    )
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    dropped = trace["metadata"]["dropped_events"]
    print(f"{args.bench} / {args.engine}: {result.cycles} cycles, "
          f"IPC {result.ipc:.3f}")
    print(f"wrote {len(trace['traceEvents'])} events to {out}"
          + (f" ({dropped} dropped over --limit)" if dropped else ""))
    print("open in https://ui.perfetto.dev or about://tracing")
    return EXIT_OK


def cmd_figures(args) -> int:
    from repro.analysis.experiments_md import generate_experiments_md

    args.out.mkdir(parents=True, exist_ok=True)
    kwargs = {}
    if args.benchmarks:
        subset = tuple(
            b.strip().upper() for b in args.benchmarks.split(",") if b.strip()
        )
        kwargs["benchmarks"] = subset
        kwargs["fig11_benchmarks"] = subset[:2]
    path = generate_experiments_md(
        args.out / "EXPERIMENTS.md",
        scale=SCALES[args.scale],
        include_full_scale=args.full_scale,
        **kwargs,
    )
    print(f"wrote {path}")
    return 0


def cmd_serve(args) -> int:
    """Run the simulation service until SIGTERM/SIGINT, then drain."""
    import asyncio

    from repro.serve.server import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        ServeConfig,
        run_server,
    )

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    events = EventLog()
    sink = None
    if args.events_log is not None:
        sink = JSONLSink(args.events_log)
        events.subscribe(sink)
    cache = None if args.no_disk_cache else ResultCache(args.cache)
    engine = ExecutionEngine(jobs=args.jobs, cache=cache, events=events)
    serve_config = ServeConfig(
        socket_path=str(args.socket) if args.socket else None,
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
        queue_limit=args.queue_limit,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
        default_deadline_s=args.default_deadline,
        memcache_entries=args.memcache_entries,
        memcache_bytes=args.memcache_bytes,
        evict_policy=args.evict_policy,
        predict=not args.no_predict,
        predict_min_run=args.predict_min_run,
        predict_depth=args.predict_depth,
        spec_limit=args.speculate_max,
    )

    async def _serve():
        ready = asyncio.Event()
        task = asyncio.get_running_loop().create_task(
            run_server(engine, serve_config, ready=ready))
        await ready.wait()
        print(f"repro serve: listening on "
              f"{serve_config.socket_path or serve_config.host}"
              f"{'' if serve_config.socket_path else ':%d' % serve_config.port}"
              f" (jobs={engine.jobs}, queue-limit="
              f"{serve_config.queue_limit}); SIGTERM drains",
              file=sys.stderr, flush=True)
        return await task

    try:
        server = asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - ^C without handler
        return EXIT_OK
    finally:
        if sink is not None:
            sink.close()
    stats = server.stats()
    print(f"repro serve: drained cleanly — "
          f"{stats['server']['requests']} request(s), "
          f"{stats['simulations']} simulation(s), "
          f"dedup ratio {stats['dedup_ratio']:.2f}, "
          f"memcache hit ratio {stats['memcache']['hit_ratio']:.2f}",
          file=sys.stderr)
    return EXIT_OK


def cmd_fleet(args) -> int:
    """Run the supervised multi-backend fleet until SIGTERM/SIGINT."""
    import asyncio
    import dataclasses as _dc
    import tempfile

    from repro.guard.faults import ServeFaultPlan
    from repro.serve.fleet import RouterConfig, make_fleet, run_fleet
    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT, ServeConfig

    if args.backends < 1:
        raise SystemExit("--backends must be >= 1")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    runtime_dir = (str(args.runtime_dir) if args.runtime_dir is not None
                   else tempfile.mkdtemp(prefix="repro-fleet-"))
    router_config = RouterConfig(
        socket_path=str(args.socket) if args.socket else None,
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
    )
    knobs = {}
    if args.probe_interval is not None:
        knobs["probe_interval_s"] = args.probe_interval
    if args.forward_timeout is not None:
        knobs["forward_timeout_s"] = args.forward_timeout
    if args.failure_threshold is not None:
        knobs["failure_threshold"] = args.failure_threshold
    if args.reset_timeout is not None:
        knobs["reset_timeout_s"] = args.reset_timeout
    if knobs:
        router_config = _dc.replace(router_config, **knobs)
    fault_plan = None
    if (args.chaos_kill_backend >= 0 or args.chaos_slow_rate
            or args.chaos_blackhole_rate or args.chaos_torn_rate):
        fault_plan = ServeFaultPlan(
            seed=args.chaos_seed,
            kill_backend=args.chaos_kill_backend,
            kill_after_requests=args.chaos_kill_after,
            slow_request_rate=args.chaos_slow_rate,
            slow_request_s=args.chaos_slow_s,
            blackhole_rate=args.chaos_blackhole_rate,
            torn_response_rate=args.chaos_torn_rate,
        )
        print(f"repro fleet: CHAOS armed ({fault_plan})", file=sys.stderr)
    supervisor, router = make_fleet(
        args.backends, runtime_dir,
        router_config=router_config,
        jobs=args.jobs,
        cache_dir=None if args.no_disk_cache else str(args.cache),
        serve_template=ServeConfig(),
        fault_plan=fault_plan,
        restart_budget=args.restart_budget,
    )

    async def _run():
        ready = asyncio.Event()

        async def _announce():
            await ready.wait()
            print(f"repro fleet: {args.backends} backend(s) behind "
                  f"{router.endpoint} (runtime: {runtime_dir}); "
                  "SIGTERM drains", file=sys.stderr, flush=True)

        task = asyncio.get_running_loop().create_task(_announce())
        try:
            return await run_fleet(supervisor, router, ready=ready)
        finally:
            task.cancel()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - ^C without handler
        return EXIT_OK
    stats = router.stats()
    restarts = sum(entry["restarts"]
                   for entry in stats["supervisor"]["backends"].values())
    print(f"repro fleet: drained cleanly — "
          f"{stats['router']['requests']} request(s), "
          f"{stats['router']['routed']} routed, "
          f"{stats['router']['failovers']} failover(s), "
          f"{restarts} restart(s)",
          file=sys.stderr)
    return EXIT_OK


def cmd_request(args) -> int:
    """Issue one request (simulate / stats / ping) to a running server."""
    from repro.errors import (
        BadRequestError,
        RequestError,
    )
    from repro.serve.client import ServeClient
    from repro.serve.retry import RetryPolicy
    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

    if not (args.stats or args.ping) and args.bench is None:
        raise SystemExit(
            "repro request: name a benchmark, or pass --stats / --ping")
    if args.retries < 1:
        raise SystemExit("--retries must be >= 1")
    client = ServeClient(
        socket_path=str(args.socket) if args.socket else None,
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
        timeout=args.timeout,
        retry=(RetryPolicy(attempts=args.retries)
               if args.retries > 1 else None),
    )
    try:
        with client:
            if args.ping:
                client.ping()
                print("pong")
                return EXIT_OK
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return EXIT_OK
            result, meta = client.simulate(
                args.bench,
                engine=args.engine,
                scale=args.scale,
                preset=args.preset,
                overrides=_overrides_dict(args.override),
                scheduler=args.scheduler.value if args.scheduler else None,
                priority=args.priority,
                deadline_s=args.deadline,
            )
    except BadRequestError as exc:
        print(f"request error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except RequestError as exc:
        print(f"request error [{exc.code}]: {exc}", file=sys.stderr)
        return (EXIT_UNAVAILABLE
                if exc.code in ("overloaded", "deadline_exceeded",
                                "shutting_down", "degraded")
                else EXIT_FAIL)
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach server: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    if args.json:
        from repro.exec import serialize_result

        print(json.dumps({"result": serialize_result(result), "meta": meta},
                         indent=2, sort_keys=True))
        return EXIT_OK
    print(format_table(
        ["metric", "value"],
        [
            ("cell", meta.get("cell", "-")),
            ("source", meta.get("source", "-")),
            ("round trip", f"{meta.get('wall_s', 0.0):.3f}s"),
            ("IPC", f"{result.ipc:.3f}"),
            ("cycles", result.cycles),
            ("L1 hit rate", format_percent(result.l1_hit_rate)),
            ("prefetches issued", result.prefetch_stats.issued),
            ("DRAM reads", result.dram_reads),
        ],
        title=f"{args.bench} @ {args.scale} via {args.engine}",
    ))
    return EXIT_OK


def cmd_cache(args) -> int:
    """Inspect (``stats``) or garbage-collect (``gc``) the disk cache."""
    cache = ResultCache(args.cache)
    if args.action == "stats":
        stats = cache.disk_stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(format_table(
                ["metric", "value"],
                [
                    ("root", stats["root"]),
                    ("schema", f"v{stats['schema']}"),
                    ("entries", stats["entries"]),
                    ("total bytes", stats["total_bytes"]),
                ],
                title="Result cache",
            ))
        return EXIT_OK
    if args.max_bytes is None and args.older_than is None:
        raise SystemExit(
            "repro cache gc: pass --max-bytes and/or --older-than")
    report = cache.gc(max_bytes=args.max_bytes, older_than_s=args.older_than)
    if args.json:
        print(json.dumps(dataclasses.asdict(report), indent=2,
                         sort_keys=True))
    else:
        print(f"evicted {report.removed} entr{'y' if report.removed == 1 else 'ies'} "
              f"({report.removed_bytes} bytes); "
              f"{report.kept} kept ({report.kept_bytes} bytes)")
    return EXIT_OK


def _install_engine(args) -> None:
    """Configure the process-wide execution engine from CLI flags.

    With the default flags (serial, no persistence, no telemetry sink)
    the already-installed engine is kept, so repeated in-process CLI
    invocations share its memo.
    """
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache", None)
    events_log = getattr(args, "events_log", None)
    if getattr(args, "resume", False) and cache_dir is None:
        # Resume needs the persistent cache to serve journaled-complete
        # cells without re-simulation.
        cache_dir = pathlib.Path(DEFAULT_CACHE_DIR)
    if jobs == 1 and cache_dir is None and events_log is None:
        return
    if jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    events = EventLog()
    if events_log is not None:
        events.subscribe(JSONLSink(events_log))
    if sys.stderr.isatty():
        events.subscribe(TTYProgress())
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    set_engine(ExecutionEngine(jobs=jobs, cache=cache, events=events))


def _report_hang(exc: BaseException) -> None:
    """Print a human-readable summary of a hang/incomplete-run error."""
    print(f"\nerror: {exc}", file=sys.stderr)
    snapshot = getattr(exc, "snapshot", None)
    if not snapshot and getattr(exc, "result", None) is not None:
        snapshot = exc.result.extra.get("hang_snapshot")
    if snapshot:
        print(format_snapshot(snapshot), file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command not in ("serve", "request", "cache", "fleet"):
            # The serving/maintenance commands manage their own engine
            # (or none); the shared flags mean different things there.
            _install_engine(args)
        return {
            "list": cmd_list,
            "run": cmd_run,
            "sweep": cmd_sweep,
            "figures": cmd_figures,
            "validate": cmd_validate,
            "timeline": cmd_timeline,
            "trace": cmd_trace,
            "serve": cmd_serve,
            "request": cmd_request,
            "fleet": cmd_fleet,
            "cache": cmd_cache,
        }[args.command](args)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except (SimulationHangError, IncompleteRunError) as exc:
        _report_hang(exc)
        return EXIT_HANG
    except CellError as exc:
        # Fail-fast batch paths (run_matrix under validate/figures) wrap
        # the worker's exception; unwrap so hangs still get a snapshot.
        cause = exc.cause
        if isinstance(cause, (SimulationHangError, IncompleteRunError)):
            _report_hang(cause)
            return EXIT_HANG
        print(f"\nerror: {exc}", file=sys.stderr)
        return EXIT_FAIL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
